"""The paper's convex programs (ICP), (CP) and (CP-h) — Figures 1 & 4.

Variables ``x(p, j)`` indicate that page *p* is evicted between its
*j*-th and *(j+1)*-th request.  For each time *t* the constraint

.. math::  \\sum_{p \\in B(t) \\setminus \\{p_t\\}} x(p, j(p,t)) \\;\\ge\\; |B(t)| - h

forces all but *h* requested pages out of the cache (``h = k`` for
(CP)).  The objective is
:math:`\\sum_i f_i\\bigl(\\sum_{p \\in P_i}\\sum_j x(p,j)\\bigr)`.

This module builds the program from a trace (sparse constraint matrix),
evaluates integral solutions (e.g. an engine eviction log) against it,
and solves the *fractional* relaxation with scipy — ``linprog``/HiGHS
when every cost is linear, ``trust-constr`` otherwise.  Because any
feasible schedule's eviction vector is feasible for (CP) with objective
:math:`\\sum_i f_i(\\text{evictions}_i) \\le \\sum_i f_i(\\text{fetches}_i)`,
the fractional optimum is a certified **lower bound on the offline
optimum's cost** — the denominator-side bound used by the medium-size
competitive-ratio experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, linprog, minimize

from repro.core.cost_functions import CostFunction, LinearCost
from repro.sim.engine import EvictionEvent
from repro.sim.trace import Trace
from repro.util.validation import check_positive_int


@dataclass
class ConvexProgram:
    """The assembled relaxation for one trace and cache size *h*.

    Attributes
    ----------
    var_index:
        ``(page, j) -> column`` for every page interval (1-based *j*).
    var_user:
        ``var_user[col]`` = owner of the variable's page.
    A, b:
        Sparse constraint matrix and right-hand side with rows only for
        times where :math:`|B(t)| > h` (other rows are vacuous).
    constraint_times:
        The trace time of each retained row.
    """

    trace: Trace
    h: int
    var_index: Dict[Tuple[int, int], int]
    var_user: np.ndarray
    A: sp.csr_matrix
    b: np.ndarray
    constraint_times: np.ndarray

    @property
    def num_vars(self) -> int:
        return len(self.var_index)

    # ------------------------------------------------------------------
    def user_totals(self, x: np.ndarray) -> np.ndarray:
        """Per-user variable sums :math:`\\sum_{p \\in P_i}\\sum_j x(p,j)`."""
        n = max(self.trace.num_users, 1)
        totals = np.zeros(n, dtype=float)
        np.add.at(totals, self.var_user, np.asarray(x, dtype=float))
        return totals

    def objective(self, x: np.ndarray, costs: Sequence[CostFunction]) -> float:
        totals = self.user_totals(x)
        return float(sum(f.value(s) for f, s in zip(costs, totals)))

    def objective_gradient(
        self, x: np.ndarray, costs: Sequence[CostFunction]
    ) -> np.ndarray:
        totals = self.user_totals(x)
        per_user = np.array(
            [float(f.derivative(s)) for f, s in zip(costs, totals)], dtype=float
        )
        return per_user[self.var_user]

    def is_feasible(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        x = np.asarray(x, dtype=float)
        if np.any(x < -tol) or np.any(x > 1 + tol):
            return False
        return bool(np.all(self.A @ x >= self.b - tol))

    def violation(self, x: np.ndarray) -> float:
        """Largest constraint shortfall (0 when feasible)."""
        x = np.asarray(x, dtype=float)
        slack = self.A @ x - self.b
        box = max(float(np.max(-x, initial=0.0)), float(np.max(x - 1.0, initial=0.0)))
        return max(float(np.max(-slack, initial=0.0)), box, 0.0)


def build_program(trace: Trace, h: int) -> ConvexProgram:
    """Assemble (CP-h) for *trace*; ``h = k`` gives the paper's (CP)."""
    h = check_positive_int(h, "h")
    requests = trace.requests

    # Variable enumeration: (page, j) for each request occurrence.
    var_index: Dict[Tuple[int, int], int] = {}
    var_user: List[int] = []
    req_count: Dict[int, int] = {}
    for p in requests:
        p = int(p)
        j = req_count.get(p, 0) + 1
        req_count[p] = j
        var_index[(p, j)] = len(var_user)
        var_user.append(int(trace.owners[p]))

    rows: List[int] = []
    cols: List[int] = []
    b_vals: List[float] = []
    times: List[int] = []
    current_interval: Dict[int, int] = {}
    requested: set[int] = set()
    row_id = 0
    for t in range(requests.size):
        p_t = int(requests[t])
        current_interval[p_t] = current_interval.get(p_t, 0) + 1
        requested.add(p_t)
        rhs = len(requested) - h
        if rhs <= 0:
            continue
        for p in requested:
            if p == p_t:
                continue
            rows.append(row_id)
            cols.append(var_index[(p, current_interval[p])])
        b_vals.append(float(rhs))
        times.append(t)
        row_id += 1

    data = np.ones(len(rows), dtype=float)
    A = sp.csr_matrix(
        (data, (rows, cols)), shape=(row_id, len(var_user))
    )
    return ConvexProgram(
        trace=trace,
        h=h,
        var_index=var_index,
        var_user=np.asarray(var_user, dtype=np.int64),
        A=A,
        b=np.asarray(b_vals, dtype=float),
        constraint_times=np.asarray(times, dtype=np.int64),
    )


def solution_from_events(
    program: ConvexProgram, events: Sequence[EvictionEvent]
) -> np.ndarray:
    """Convert an engine eviction log to a 0/1 variable vector.

    An eviction of page *p* at time *t* sets ``x(p, j)`` for the
    interval *p* was in at time *t*.
    """
    trace = program.trace
    x = np.zeros(program.num_vars, dtype=float)
    current_interval: Dict[int, int] = {}
    by_time: Dict[int, EvictionEvent] = {e.t: e for e in events}
    for t in range(trace.length):
        p_t = int(trace.requests[t])
        current_interval[p_t] = current_interval.get(p_t, 0) + 1
        ev = by_time.get(t)
        if ev is not None:
            j = current_interval.get(ev.victim)
            if j is None:
                raise ValueError(
                    f"event at t={t} evicts page {ev.victim} never requested"
                )
            x[program.var_index[(ev.victim, j)]] = 1.0
    return x


@dataclass
class FractionalSolution:
    """A solved fractional relaxation.

    Attributes
    ----------
    objective:
        The (possibly solver-tolerance-approximate) optimum value.
    certified_lower_bound:
        A rigorous lower bound on the true fractional optimum — exact
        for the LP path, and via tangent-linearisation + exact LP for
        the nonlinear path (see :func:`solve_fractional`).
    """

    x: np.ndarray
    objective: float
    user_totals: np.ndarray
    converged: bool
    method: str
    certified_lower_bound: float = 0.0

    def __repr__(self) -> str:
        return (
            f"FractionalSolution(objective={self.objective:.6g}, "
            f"certified>={self.certified_lower_bound:.6g}, "
            f"method={self.method!r}, converged={self.converged})"
        )


def solve_fractional(
    program: ConvexProgram,
    costs: Sequence[CostFunction],
    tol: float = 1e-8,
    max_iter: int = 500,
) -> FractionalSolution:
    """Solve the fractional relaxation: HiGHS LP when every cost is
    linear, ``trust-constr`` on the convex objective otherwise.

    The returned objective lower-bounds the cost of every feasible
    integral schedule (see module docstring).  For the nonlinear path
    the solution is a local (= global, by convexity) optimum up to
    solver tolerance.
    """
    n_users = max(program.trace.num_users, 1)
    if len(costs) < program.trace.num_users:
        raise ValueError(
            f"need {program.trace.num_users} cost functions, got {len(costs)}"
        )
    nv = program.num_vars
    if nv == 0 or program.A.shape[0] == 0:
        # No variables, or no binding constraints: x = 0 is optimal
        # (the objective is increasing in every variable).
        x = np.zeros(nv)
        value = float(program.objective(x, costs)) if nv else 0.0
        return FractionalSolution(
            x=x,
            objective=value,
            user_totals=program.user_totals(x) if nv else np.zeros(n_users),
            converged=True,
            method="empty",
            certified_lower_bound=value,
        )

    def _exact_lp(weights: np.ndarray) -> Tuple[np.ndarray, float]:
        """HiGHS solve of min w·x over the relaxation polytope."""
        c = weights[program.var_user]
        res = linprog(
            c,
            A_ub=-program.A,
            b_ub=-program.b,
            bounds=(0.0, 1.0),
            method="highs",
        )
        if not res.success:
            raise RuntimeError(f"linprog failed: {res.message}")
        return np.asarray(res.x, dtype=float), float(res.fun)

    def _linear_weight(f: CostFunction) -> Optional[float]:
        if isinstance(f, LinearCost):
            return f.weight
        from repro.core.cost_functions import MonomialCost

        if isinstance(f, MonomialCost) and f.beta == 1.0:
            return f.scale
        return None

    linear_weights = [_linear_weight(f) for f in costs[:n_users]]
    if all(w is not None for w in linear_weights):
        weights = np.array(linear_weights, dtype=float)
        x, value = _exact_lp(weights)
        return FractionalSolution(
            x=x,
            objective=value,
            user_totals=program.user_totals(x),
            converged=True,
            method="highs-lp",
            certified_lower_bound=value,
        )

    def obj(x: np.ndarray) -> float:
        return program.objective(x, costs)

    def grad(x: np.ndarray) -> np.ndarray:
        return program.objective_gradient(x, costs)

    # Feasible-ish start: everything evicted (x = 1 satisfies all rows).
    x0 = np.ones(nv, dtype=float)
    constraints = [LinearConstraint(program.A, lb=program.b, ub=np.inf)]
    res = minimize(
        obj,
        x0,
        jac=grad,
        bounds=Bounds(0.0, 1.0),
        constraints=constraints,
        method="trust-constr",
        options={"gtol": tol, "xtol": tol, "maxiter": max_iter, "verbose": 0},
    )
    x = np.clip(np.asarray(res.x, dtype=float), 0.0, 1.0)
    converged = bool(res.success) and program.violation(x) <= 1e-6

    # Certified lower bound via tangent linearisation: convexity gives
    # f_i(s) >= f_i(s̄_i) + f_i'(s̄_i)(s - s̄_i) for the per-user totals
    # s, so  OPT >= Σ_i [f_i(s̄_i) - f_i'(s̄_i) s̄_i] + min_w·x  where
    # the weighted LP (weights f_i'(s̄_i)) is solved EXACTLY by HiGHS.
    # Tight when s̄ is near-optimal; rigorous regardless of how far the
    # interior-point solve got.
    totals = program.user_totals(x)
    grads = np.array(
        [float(f.derivative(s)) for f, s in zip(costs, totals)], dtype=float
    )
    offset = float(
        sum(float(f.value(s)) - g * s for f, s, g in zip(costs, totals, grads))
    )
    _lp_x, lp_value = _exact_lp(grads)
    certified = max(offset + lp_value, 0.0)

    return FractionalSolution(
        x=x,
        objective=float(obj(x)),
        user_totals=totals,
        converged=converged,
        method="trust-constr",
        certified_lower_bound=certified,
    )


def fractional_opt_lower_bound(
    trace: Trace, costs: Sequence[CostFunction], k: int
) -> float:
    """Convenience: build (CP) and return a **certified** lower bound on
    the fractional optimum — hence on any schedule's cost on *trace*.

    The LP path (all-linear costs) is exact; the nonlinear path uses
    tangent linearisation at the interior-point solution plus an exact
    LP solve (see :func:`solve_fractional`).
    """
    program = build_program(trace, k)
    return solve_fractional(program, costs).certified_lower_bound


__all__ = [
    "ConvexProgram",
    "build_program",
    "solution_from_events",
    "FractionalSolution",
    "solve_fractional",
    "fractional_opt_lower_bound",
]
