"""ALG-CONT — the paper's continuous primal-dual algorithm (Fig. 2).

The continuous algorithm raises the dual variable :math:`y^\\circ_t`
until the first resident page's optimality slack

.. math::

   f'_{i(p')}\\bigl(m(i(p'), t-1) + 1\\bigr)
   \\;-\\; \\sum_{t'=t(p',j)+1}^{t} y^\\circ_{t'}
   \\;+\\; z^\\circ(p', j)

reaches zero; that page is evicted (its :math:`x^\\circ` is set to 1).
While :math:`y_t` rises, the :math:`z^\\circ` of every page *outside*
the cache (except :math:`p_t`) rises at the same rate, preserving the
complementary-slackness equality (2b) for already-evicted intervals.

All continuous motion collapses to one jump per eviction — :math:`y_t`
rises by exactly the minimum slack (the paper's §2.5: ":math:`y_t`
increases in iteration :math:`t` by the current value of :math:`B(p)`
when page :math:`p` is evicted") — so this implementation shares the
budget arithmetic (and the two-level
:class:`~repro.core.budget_index.BudgetIndex`, hence tie-breaking) with
:class:`~repro.core.alg_discrete.AlgDiscrete` and provably makes
identical eviction decisions (tested), while additionally recording the
complete dual solution in a :class:`~repro.core.ledger.PrimalDualLedger`
for machine-checking the paper's Lemma 2.1 invariants.

A resident page's slack relates to the discrete budget by
``slack(p) = B(p)``: the gradient term refreshes on every request and
eviction of the owner (Fig. 3 steps 2/4) and the accumulated
:math:`y` subtraction is Fig. 3's step 3; :math:`z^\\circ` of a
resident page is always zero by complementary slackness (2a).
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

import numpy as np

from repro.core.budget_index import BudgetIndex
from repro.core.cost_functions import CostFunction
from repro.core.ledger import PrimalDualLedger
from repro.sim.policy import EvictionPolicy, SimContext


class AlgContinuous(EvictionPolicy):
    """ALG-CONT with full dual-ledger recording.

    Parameters
    ----------
    derivative_mode:
        ``'continuous'`` for :math:`f'` (the Fig. 2 / Theorem 1.1
        setting), ``'marginal'`` for the discrete derivative (§2.5).

    Attributes
    ----------
    ledger:
        After a run, the complete :math:`(x^\\circ, y^\\circ, z^\\circ)`
        record for invariant checking.
    """

    name = "alg-cont"
    requires_costs = True

    def __init__(self, derivative_mode: str = "continuous") -> None:
        if derivative_mode not in ("continuous", "marginal"):
            raise ValueError(
                f"derivative_mode must be 'continuous' or 'marginal', got {derivative_mode!r}"
            )
        self.derivative_mode = derivative_mode
        self._costs: Optional[Sequence[CostFunction]] = None
        self._owners: Optional[np.ndarray] = None
        self.ledger: Optional[PrimalDualLedger] = None
        # Same structure/arithmetic as AlgDiscrete so decisions match.
        self._index = BudgetIndex()
        self._evictions_by_user: Optional[np.ndarray] = None
        self._fresh_cache: dict = {}
        #: Pages whose *current* interval has x = 1 (outside the cache,
        #: requested before) — the set whose z rises with y.
        self._evicted_now: Set[int] = set()
        #: The page being served when an eviction is in flight; the
        #: paper excludes p_t from the z-raise.
        self._pending_request: Optional[int] = None

    # ------------------------------------------------------------------
    def reset(self, ctx: SimContext) -> None:
        if ctx.costs is None:
            raise ValueError("AlgContinuous requires per-user cost functions")
        self._costs = ctx.costs
        self._owners = ctx.owners
        self.ledger = PrimalDualLedger(
            num_pages=ctx.num_pages, num_users=ctx.num_users, T=ctx.horizon
        )
        self._index = BudgetIndex()
        self._evictions_by_user = np.zeros(max(ctx.num_users, 1), dtype=np.int64)
        self._fresh_cache = {}
        self._evicted_now = set()
        self._pending_request = None

    # ------------------------------------------------------------------
    def _gradient(self, user: int, m: int) -> float:
        f = self._costs[user]
        if self.derivative_mode == "continuous":
            return float(f.derivative(float(m)))
        return f.marginal(m)

    def _fresh_budget(self, user: int) -> float:
        # Cached per user between evictions (hot path; see AlgDiscrete).
        cached = self._fresh_cache.get(user)
        if cached is None:
            cached = self._gradient(user, int(self._evictions_by_user[user]) + 1)
            self._fresh_cache[user] = cached
        return cached

    def slack_of(self, page: int) -> float:
        """Current optimality slack of a resident page (== its budget)."""
        return self._index.budget_of(page)

    # ------------------------------------------------------------------
    def on_hit(self, page: int, t: int) -> None:
        # The hit opens a new interval j+1 with x = 0 and a fresh slack.
        self.ledger.record_request(page, t)
        user = int(self._owners[page])
        self._index.refresh(page, self._fresh_budget(user))

    def on_insert(self, page: int, t: int) -> None:
        self.ledger.record_request(page, t)
        # If the page was outside the cache with x = 1, its old interval
        # closes; the new interval starts with x = 0 and z = 0.
        self._evicted_now.discard(page)
        user = int(self._owners[page])
        self._index.insert(page, user, self._fresh_budget(user))

    def choose_victim(self, page: int, t: int) -> int:
        self._pending_request = page
        victim, _user, _budget = self._index.min_page()
        return victim

    def on_evict(self, page: int, t: int) -> None:
        user = int(self._owners[page])
        delta = self._index.remove(page)  # = min slack = the y_t jump

        # Record the continuous motion's endpoint: y_t rose by `delta`,
        # and z of every page outside the cache — except the requested
        # page p_t, which the paper explicitly excludes — rose in
        # lockstep.  The victim itself reaches slack 0 exactly at this
        # moment, so its x is set *before* z starts accruing on it:
        # z(p, j) of the victim's interval stays 0 for this jump and
        # grows only on later jumps within the same interval, matching
        # Fig. 2 where z rises only for pages already outside the cache.
        self.ledger.record_y_jump(t, delta)
        if delta != 0.0:
            for outside in self._evicted_now:
                if outside == self._pending_request:
                    continue
                self.ledger.record_z_increase(
                    outside, self.ledger.current_interval(outside), delta
                )
        self.ledger.record_eviction(page, user, t)
        self._evicted_now.add(page)

        self._index.subtract_from_all(delta)

        m_before = int(self._evictions_by_user[user])
        self._evictions_by_user[user] += 1
        self._fresh_cache.pop(user, None)
        uplift = self._gradient(user, m_before + 2) - self._gradient(user, m_before + 1)
        if uplift != 0.0:
            self._index.uplift_user(user, uplift)

    def on_flush(self, page: int, t: int) -> None:
        """Externally-forced removal (e.g. tenant migration): forget the
        page without dual updates.  The ledger records the eviction (the
        page did leave the cache, so its interval's x is 1) but no y
        jump — invariant (2b) is not maintained across flushes, which
        only the multi-pool simulator performs."""
        user = int(self._owners[page])
        self._index.remove(page)
        self.ledger.record_eviction(page, user, t)
        self._evicted_now.add(page)
        self._evictions_by_user[user] += 1
        self._fresh_cache.pop(user, None)

    def __repr__(self) -> str:
        return f"AlgContinuous(derivative_mode={self.derivative_mode!r})"


__all__ = ["AlgContinuous"]
