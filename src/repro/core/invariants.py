"""Machine-checking the paper's algorithm invariants (Lemma 2.1).

ALG-CONT claims to maintain, at all times:

* **(1a)** primal feasibility —
  :math:`\\sum_{p \\in B(t)\\setminus\\{p_t\\}} x^\\circ(p, j(p,t)) \\ge |B(t)| - k`;
* **(1b)** :math:`0 \\le x^\\circ \\le 1`; **(1c)** :math:`y^\\circ, z^\\circ \\ge 0`;
* **(2a)** :math:`z^\\circ(p,j) > 0 \\Rightarrow x^\\circ(p,j) = 1`;
* **(2b)** if :math:`x^\\circ(p,j)` was set at time :math:`\\hat t`:
  :math:`f'_{i(p)}(m(i(p),\\hat t)) - \\sum_{t \\in (t(p,j), t(p,j+1))} y^\\circ_t + z^\\circ(p,j) = 0`;
* **(3a)** for **all** :math:`(p, j)`:
  :math:`f'_{i(p)}(m(i(p),T)) - \\sum_{t \\in (t(p,j), t(p,j+1))} y^\\circ_t + z^\\circ(p,j) \\ge 0`.

:func:`check_invariants` recomputes every condition from the raw
:class:`~repro.core.ledger.PrimalDualLedger` — request times, eviction
events, dual jumps — independently of the algorithm's internal
bookkeeping, and returns a structured report.

Condition (3a) for never-evicted intervals relies on the paper's
**end-of-sequence flush** convention ("the algorithm needs to return an
empty cache … a dummy user who owns k pages … appended at the end of
σ"): the proof uses the fact that every page is eventually evicted.
:func:`flushed_instance` constructs exactly that augmented instance;
run ALG-CONT on it before asserting (3a) unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_functions import CostFunction, LinearCost
from repro.core.ledger import PrimalDualLedger
from repro.sim.trace import Trace


@dataclass(frozen=True)
class Violation:
    """One violated condition with enough context to debug it."""

    condition: str
    detail: str
    magnitude: float = 0.0


@dataclass
class InvariantReport:
    """Outcome of checking one ledger against the paper's invariants."""

    violations: List[Violation] = field(default_factory=list)
    checked_conditions: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_condition(self, condition: str) -> List[Violation]:
        return [v for v in self.violations if v.condition == condition]

    def summary(self) -> str:
        if self.ok:
            return f"all invariants hold ({', '.join(self.checked_conditions)})"
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.condition] = counts.get(v.condition, 0) + 1
        parts = ", ".join(f"{c}: {n}" for c, n in sorted(counts.items()))
        return f"{len(self.violations)} violations ({parts})"


def _gradient(f: CostFunction, m: int, mode: str) -> float:
    if mode == "continuous":
        return float(f.derivative(float(m)))
    return f.marginal(m) if m >= 1 else float(f.derivative(0.0))


def check_invariants(
    trace: Trace,
    ledger: PrimalDualLedger,
    costs: Sequence[CostFunction],
    k: int,
    derivative_mode: str = "continuous",
    tol: float = 1e-7,
    check_3a: bool = True,
) -> InvariantReport:
    """Verify the Lemma 2.1 invariants of a finished ALG-CONT run.

    Parameters
    ----------
    trace, costs, k:
        The instance the ledger was produced on.
    ledger:
        The recorded primal/dual solution.
    derivative_mode:
        Must match the algorithm's mode so the gradient terms agree.
    tol:
        Absolute tolerance on the equality (2b) and the one-sided (3a).
    check_3a:
        (3a) for never-evicted intervals is only guaranteed under the
        flush convention — pass ``False`` for unflushed traces or use
        :func:`flushed_instance`.
    """
    report = InvariantReport()
    conditions = ["1a", "1b", "1c", "2a", "2b"] + (["3a"] if check_3a else [])
    report.checked_conditions = tuple(conditions)

    T = trace.length
    owners = trace.owners

    # ------------------------------------------------------------------
    # (1b) / (1c): variable ranges.
    # ------------------------------------------------------------------
    for key, val in ledger.x.items():
        if val not in (0, 1):
            report.violations.append(
                Violation("1b", f"x{key} = {val} not in {{0,1}}", abs(val))
            )
    if np.any(ledger.y < -tol):
        worst = float(ledger.y.min())
        report.violations.append(Violation("1c", f"negative y (min={worst})", -worst))
    for key, val in ledger.z.items():
        if val < -tol:
            report.violations.append(Violation("1c", f"z{key} = {val} < 0", -val))

    # ------------------------------------------------------------------
    # (1a): primal feasibility at every time step, replayed from x.
    # ------------------------------------------------------------------
    requested: set[int] = set()
    req_count = {p: 0 for p in ledger.request_times}
    # For each page, precompute the set-times of its intervals for quick
    # "is the current interval evicted as of time t" queries.
    for t in range(T):
        p_t = int(trace.requests[t])
        requested.add(p_t)
        req_count[p_t] = req_count.get(p_t, 0) + 1
        lhs = 0
        for p in requested:
            if p == p_t:
                continue
            j = req_count.get(p, 0)
            if j == 0:
                continue
            key = (p, j)
            if ledger.x.get(key) and ledger.set_time[key] <= t:
                lhs += 1
        rhs = len(requested) - k
        if lhs < rhs:
            report.violations.append(
                Violation(
                    "1a",
                    f"t={t}: sum x = {lhs} < |B(t)| - k = {rhs}",
                    float(rhs - lhs),
                )
            )

    # ------------------------------------------------------------------
    # (2a): z supported only on evicted intervals.
    # ------------------------------------------------------------------
    for key, val in ledger.z.items():
        if val > tol and not ledger.x.get(key):
            report.violations.append(
                Violation("2a", f"z{key} = {val} > 0 but x{key} = 0", val)
            )

    # ------------------------------------------------------------------
    # (2b): the set-time equality for every evicted interval.
    # ------------------------------------------------------------------
    for key in ledger.x_pairs():
        page, j = key
        user = int(owners[page])
        s = ledger.set_time[key]
        m_at_set = ledger.evictions_of_user(user, up_to=s)
        grad = _gradient(costs[user], m_at_set, derivative_mode)
        y_sum = ledger.y_sum_over_interval(page, j)
        z_val = ledger.z.get(key, 0.0)
        residual = grad - y_sum + z_val
        scale = max(1.0, abs(grad), abs(y_sum), abs(z_val))
        if abs(residual) > tol * scale:
            report.violations.append(
                Violation(
                    "2b",
                    f"x({page},{j}) set at t={s}: f'({m_at_set}) - Σy + z = "
                    f"{grad} - {y_sum} + {z_val} = {residual} != 0",
                    abs(residual),
                )
            )

    # ------------------------------------------------------------------
    # (3a): the gradient condition at final miss counts, all intervals.
    # ------------------------------------------------------------------
    if check_3a:
        m_final = ledger.total_evictions_by_user()
        for page, times in ledger.request_times.items():
            user = int(owners[page])
            grad = _gradient(costs[user], int(m_final[user]), derivative_mode)
            for j in range(1, len(times) + 1):
                y_sum = ledger.y_sum_over_interval(page, j)
                z_val = ledger.z.get((page, j), 0.0)
                residual = grad - y_sum + z_val
                scale = max(1.0, abs(grad), abs(y_sum), abs(z_val))
                if residual < -tol * scale:
                    report.violations.append(
                        Violation(
                            "3a",
                            f"({page},{j}): f'({int(m_final[user])}) - Σy + z = "
                            f"{residual} < 0",
                            -residual,
                        )
                    )

    return report


def flush_weight(costs: Sequence[CostFunction], horizon: int, k: int) -> float:
    """A per-miss weight for the dummy user large enough that its pages
    are never evicted.

    Real budgets never exceed :math:`g = \\max_i f_i'(T+1)`, and during
    the ``k`` flush evictions the uniform budget subtraction removes at
    most :math:`k \\cdot g` from a dummy page's budget, so any weight
    above :math:`(k+1) g` keeps dummies strictly out of reach.
    """
    top = max(float(f.derivative(float(horizon + 2))) for f in costs)
    return 2.0 * (k + 2) * max(top, 1.0)


def flushed_instance(
    trace: Trace, costs: Sequence[CostFunction], k: int
) -> Tuple[Trace, List[CostFunction]]:
    """Append the paper's dummy user forcing an empty (real) cache.

    Adds a new user owning ``k`` fresh pages, requested once each after
    the real sequence.  Its cost is linear with a weight so large that
    ALG never evicts a dummy page, so each dummy request evicts one
    real page — after the flush every real page is outside the cache
    and #evictions = #fetch-misses per real user.

    Returns the augmented trace and cost list (original objects are not
    modified).
    """
    n = trace.num_users
    dummy_user = n
    first_dummy_page = trace.num_pages
    owners = np.concatenate(
        [trace.owners, np.full(k, dummy_user, dtype=np.int64)]
    )
    flush_pages = np.arange(first_dummy_page, first_dummy_page + k, dtype=np.int64)
    requests = np.concatenate([trace.requests, flush_pages])
    new_trace = Trace(requests, owners, name=f"{trace.name}+flush")
    real_costs = list(costs[:n]) if n else [LinearCost()]
    new_costs = list(costs[:n]) + [
        LinearCost(flush_weight(real_costs, trace.length, k))
    ]
    return new_trace, new_costs


__all__ = [
    "Violation",
    "InvariantReport",
    "check_invariants",
    "flushed_instance",
    "flush_weight",
]
