"""The paper's primary contribution: cost functions, the primal-dual
online algorithms (ALG-DISCRETE / ALG-CONT), the convex programs, the
invariant machinery, offline optima, Claim 2.3, and the Theorem 1.4
lower-bound construction.
"""

from repro.core.alg_continuous import AlgContinuous
from repro.core.alg_discrete import DERIVATIVE_MODES, AlgDiscrete
from repro.core.alg_discrete_naive import NaiveAlgDiscrete
from repro.core.budget_index import BudgetIndex
from repro.core.fractional_online import (
    FractionalRunResult,
    OnlineFractionalCaching,
    bbn_competitive_ceiling,
)
from repro.core.claims import ClaimCheck, check_claim_2_3, claim_2_3_tightness_profile
from repro.core.convex_program import (
    ConvexProgram,
    FractionalSolution,
    build_program,
    fractional_opt_lower_bound,
    solution_from_events,
    solve_fractional,
)
from repro.core.cost_functions import (
    CallableCost,
    CostFunction,
    ExponentialCost,
    LinearCost,
    MonomialCost,
    PiecewiseLinearCost,
    PolynomialCost,
    ScaledCost,
    SumCost,
    TableCost,
    combined_alpha,
    curvature_ratio,
    discrete_alpha,
    numeric_alpha,
    validate_paper_assumptions,
)
from repro.core.invariants import (
    InvariantReport,
    Violation,
    check_invariants,
    flush_weight,
    flushed_instance,
)
from repro.core.ledger import PrimalDualLedger
from repro.core.lower_bound import (
    AdaptiveAdversary,
    AdversarialRun,
    BatchedOfflinePolicy,
    LowerBoundMeasurement,
    lower_bound_costs,
    measure_lower_bound,
)
from repro.core.offline import (
    OfflineOptResult,
    WeightedBeladyPolicy,
    belady_misses,
    brute_force_offline_opt,
    exact_offline_opt,
    exact_weighted_opt_lp,
    heuristic_offline_cost,
)

__all__ = [
    # algorithms
    "AlgDiscrete",
    "NaiveAlgDiscrete",
    "DERIVATIVE_MODES",
    "BudgetIndex",
    "AlgContinuous",
    "OnlineFractionalCaching",
    "FractionalRunResult",
    "bbn_competitive_ceiling",
    "PrimalDualLedger",
    # cost functions
    "CostFunction",
    "LinearCost",
    "MonomialCost",
    "PolynomialCost",
    "PiecewiseLinearCost",
    "ExponentialCost",
    "TableCost",
    "ScaledCost",
    "SumCost",
    "CallableCost",
    "curvature_ratio",
    "numeric_alpha",
    "discrete_alpha",
    "combined_alpha",
    "validate_paper_assumptions",
    # invariants
    "InvariantReport",
    "Violation",
    "check_invariants",
    "flushed_instance",
    "flush_weight",
    # convex programs
    "ConvexProgram",
    "build_program",
    "solution_from_events",
    "FractionalSolution",
    "solve_fractional",
    "fractional_opt_lower_bound",
    # offline optima
    "OfflineOptResult",
    "belady_misses",
    "WeightedBeladyPolicy",
    "heuristic_offline_cost",
    "exact_offline_opt",
    "exact_weighted_opt_lp",
    "brute_force_offline_opt",
    # claims
    "ClaimCheck",
    "check_claim_2_3",
    "claim_2_3_tightness_profile",
    # lower bound
    "AdaptiveAdversary",
    "AdversarialRun",
    "BatchedOfflinePolicy",
    "LowerBoundMeasurement",
    "lower_bound_costs",
    "measure_lower_bound",
]
