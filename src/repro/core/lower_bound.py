"""Theorem 1.4 — the adversarial lower-bound instance (paper §4).

The construction: *n* users, each owning a single page; cache size
:math:`k = n - 1`; cost :math:`f_i(x) = x^{\\beta}`.  At every step the
adversary requests exactly the one page missing from the *online
algorithm's* cache, forcing a miss (hence an eviction) on every request
after warm-up.  Meanwhile an offline strategy that batches evictions —
one per :math:`(n-1)/2` requests, always evicting the page with the
fewest evictions so far that is not requested within the batch — pays
only :math:`\\approx (4T/n^2)^{\\beta} n`, while the online algorithm
pays at least :math:`(T/n)^{\\beta} n`.  The ratio is
:math:`\\Omega(k)^{\\beta}` — concretely :math:`(n/4)^{\\beta}`.

Because the request sequence depends on the online algorithm's state,
it cannot be a static :class:`~repro.sim.trace.Trace`; the
:class:`AdaptiveAdversary` drives the policy step by step, mirroring
the engine mechanics, and *records* the sequence it generated so the
offline strategies can then run on it as an ordinary trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_functions import CostFunction, MonomialCost
from repro.sim.engine import SimResult, simulate
from repro.sim.policy import EvictionPolicy, SimContext
from repro.sim.trace import Trace
from repro.util.validation import check_positive_int


def lower_bound_costs(n: int, beta: float) -> List[MonomialCost]:
    """The instance's cost functions :math:`f_i(x) = x^{\\beta}`."""
    return [MonomialCost(beta) for _ in range(n)]


@dataclass
class AdversarialRun:
    """Outcome of driving one online policy with the §4 adversary."""

    trace: Trace
    online_result: SimResult

    def online_cost(self, costs: Sequence[CostFunction]) -> float:
        return self.online_result.cost(costs)


class AdaptiveAdversary:
    """Generates the request-the-missing-page sequence for a policy.

    The first :math:`n-1` requests are pages ``0..n-2`` (filling the
    cache); from then on, each request is the unique page outside the
    policy's cache, which by construction is a miss forcing an
    eviction.
    """

    def __init__(self, n: int, T: int) -> None:
        self.n = check_positive_int(n, "n")
        if self.n < 2:
            raise ValueError("need n >= 2 users")
        self.T = check_positive_int(T, "T")
        if self.T < self.n:
            raise ValueError("need T >= n so the adversary phase is non-empty")

    def run(
        self,
        policy: EvictionPolicy,
        costs: Optional[Sequence[CostFunction]] = None,
    ) -> AdversarialRun:
        """Drive *policy*; return the generated trace and online result.

        Mirrors the engine loop exactly (hit/insert/evict callbacks) —
        property tests cross-check by re-simulating the recorded trace
        through :func:`repro.sim.engine.simulate` and asserting
        identical miss counts.
        """
        n, T, k = self.n, self.T, self.n - 1
        owners = np.arange(n, dtype=np.int64)  # page i owned by user i
        if policy.requires_future:
            raise ValueError("the adversary only makes sense against online policies")
        if policy.requires_costs and costs is None:
            raise ValueError(f"{policy.name} requires cost functions")

        ctx = SimContext(
            k=k,
            owners=owners,
            num_users=n,
            costs=costs,
            trace=None,
            num_pages=n,
            horizon=T,
        )
        policy.reset(ctx)

        cache: set[int] = set()
        requests: List[int] = []
        user_misses = np.zeros(n, dtype=np.int64)
        hits = 0
        all_pages = set(range(n))

        for t in range(T):
            if len(cache) < k:
                # Warm-up: deterministic fill with pages 0, 1, ...
                page = t % n
                while page in cache:
                    page = (page + 1) % n
            else:
                missing = all_pages - cache
                # Exactly one page is missing once the cache is full.
                page = min(missing)
            requests.append(page)

            if page in cache:
                hits += 1
                policy.on_hit(page, t)
                continue
            user_misses[page] += 1  # owner(page) == page index
            if len(cache) < k:
                cache.add(page)
                policy.on_insert(page, t)
            else:
                victim = policy.choose_victim(page, t)
                if victim not in cache or victim == page:
                    raise RuntimeError(
                        f"{policy.name} returned invalid victim {victim} at t={t}"
                    )
                cache.remove(victim)
                policy.on_evict(victim, t)
                cache.add(page)
                policy.on_insert(page, t)

        trace = Trace(
            np.asarray(requests, dtype=np.int64),
            owners,
            name=f"adversarial(n={n},T={T})",
        )
        result = SimResult(
            policy_name=policy.name,
            trace_name=trace.name,
            k=k,
            hits=hits,
            misses=int(user_misses.sum()),
            user_misses=user_misses,
            final_cache=sorted(cache),
        )
        return AdversarialRun(trace=trace, online_result=result)


class BatchedOfflinePolicy(EvictionPolicy):
    """The §4 offline strategy, generalised to run on any trace.

    Time is split into batches of length ``batch_len`` (the paper uses
    :math:`(n-1)/2`).  On a miss, the victim is a resident page that is
    **not requested before the end of the current batch** — so at most
    one miss occurs per batch on the adversarial instance — choosing,
    among candidates, the page evicted fewest times so far (the
    balancing rule that keeps every user's count near the average),
    breaking remaining ties by furthest next use.
    """

    name = "batched-offline"
    requires_future = True

    def __init__(self, batch_len: int) -> None:
        self.batch_len = check_positive_int(batch_len, "batch_len")
        self._table: Optional[np.ndarray] = None
        self._next_use: dict[int, int] = {}
        self._evictions: dict[int, int] = {}
        self._T = 0

    def reset(self, ctx: SimContext) -> None:
        if ctx.trace is None:
            raise ValueError("BatchedOfflinePolicy requires the trace")
        self._table = ctx.trace.next_use_table()
        self._T = ctx.trace.length
        self._next_use = {}
        self._evictions = {}

    def on_hit(self, page: int, t: int) -> None:
        self._next_use[page] = int(self._table[t])

    def on_insert(self, page: int, t: int) -> None:
        self._next_use[page] = int(self._table[t])

    def choose_victim(self, page: int, t: int) -> int:
        batch_end = ((t // self.batch_len) + 1) * self.batch_len
        best: Optional[Tuple[int, int, int]] = None
        best_page = -1
        for candidate, nxt in self._next_use.items():
            outside_batch = 0 if nxt >= batch_end else 1
            key = (outside_batch, self._evictions.get(candidate, 0), -nxt)
            if best is None or key < best:
                best = key
                best_page = candidate
        return best_page

    def on_evict(self, page: int, t: int) -> None:
        del self._next_use[page]
        self._evictions[page] = self._evictions.get(page, 0) + 1


@dataclass
class LowerBoundMeasurement:
    """One cell of the Theorem 1.4 experiment."""

    n: int
    k: int
    beta: float
    T: int
    online_cost: float
    offline_cost: float
    online_misses: np.ndarray
    offline_misses: np.ndarray

    @property
    def ratio(self) -> float:
        return self.online_cost / self.offline_cost if self.offline_cost > 0 else np.inf

    @property
    def theoretical_ratio(self) -> float:
        """The paper's :math:`(n/4)^{\\beta}` lower-bound guarantee."""
        return (self.n / 4.0) ** self.beta


def measure_lower_bound(
    policy_factory: Callable[[], EvictionPolicy],
    n: int,
    beta: float,
    T: int,
) -> LowerBoundMeasurement:
    """Run the Theorem 1.4 instance against one online policy.

    ``policy_factory`` builds a fresh policy (e.g.
    ``lambda: AlgDiscrete()`` or ``lambda: LRUPolicy()``); the offline
    comparator is :class:`BatchedOfflinePolicy` with the paper's batch
    length :math:`\\max(1, (n-1)/2)` run on the recorded sequence.
    """
    costs = lower_bound_costs(n, beta)
    adversary = AdaptiveAdversary(n=n, T=T)
    run = adversary.run(policy_factory(), costs=costs)

    batch_len = max(1, (n - 1) // 2)
    offline = simulate(run.trace, BatchedOfflinePolicy(batch_len), n - 1)

    from repro.sim.metrics import cost_of_misses

    return LowerBoundMeasurement(
        n=n,
        k=n - 1,
        beta=float(beta),
        T=T,
        online_cost=cost_of_misses(run.online_result.user_misses, costs),
        offline_cost=cost_of_misses(offline.user_misses, costs),
        online_misses=run.online_result.user_misses,
        offline_misses=offline.user_misses,
    )


__all__ = [
    "lower_bound_costs",
    "AdversarialRun",
    "AdaptiveAdversary",
    "BatchedOfflinePolicy",
    "LowerBoundMeasurement",
    "measure_lower_bound",
]
