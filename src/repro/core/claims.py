"""Numeric verification of the paper's Claim 2.3.

Claim 2.3 is the technical heart of the analysis: for convex increasing
:math:`f` with :math:`f(0)=0` and non-negative :math:`x_1,\\dots,x_n`,

.. math::

   f'\\Bigl(\\sum_{j=1}^n x_j\\Bigr)\\sum_{j=1}^n x_j
   \\;\\le\\;
   \\alpha \\sum_{j=1}^n x_j\\, f'\\Bigl(\\sum_{i=1}^{j} x_i\\Bigr),
   \\qquad \\alpha = \\sup_x \\frac{x f'(x)}{f(x)},

with the intermediate inequality (6)
:math:`\\sum_j x_j f'(\\sum_{i \\le j} x_i) \\ge f(\\sum_j x_j)`.

These helpers compute both sides vectorised and are used by the unit /
property tests and experiment E7 to confirm the inequality holds (and
is asymptotically tight, :math:`\\alpha = \\beta`, for monomials).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.cost_functions import CostFunction


@dataclass(frozen=True)
class ClaimCheck:
    """Both sides of Claim 2.3 on one sequence."""

    lhs: float
    rhs: float
    alpha: float
    inequality6_lhs: float
    inequality6_rhs: float

    @property
    def holds(self) -> bool:
        scale = max(1.0, abs(self.lhs), abs(self.rhs))
        return self.lhs <= self.rhs + 1e-9 * scale

    @property
    def inequality6_holds(self) -> bool:
        scale = max(1.0, abs(self.inequality6_lhs), abs(self.inequality6_rhs))
        return self.inequality6_lhs >= self.inequality6_rhs - 1e-9 * scale

    @property
    def tightness(self) -> float:
        """lhs / rhs — 1.0 means the claim is tight on this sequence."""
        return self.lhs / self.rhs if self.rhs > 0 else np.nan


def check_claim_2_3(
    f: CostFunction,
    xs: Sequence[float],
    alpha: Optional[float] = None,
) -> ClaimCheck:
    """Evaluate Claim 2.3 and inequality (6) for *f* on sequence *xs*.

    Parameters
    ----------
    f:
        A convex increasing cost with :math:`f(0)=0` (not validated
        here; see
        :func:`repro.core.cost_functions.validate_paper_assumptions`).
    xs:
        Non-negative terms :math:`x_1, \\dots, x_n` in order.
    alpha:
        Override the curvature (defaults to ``f.alpha()``) — the tests
        use this to confirm the claim *fails* for too-small alpha.
    """
    arr = np.asarray(list(xs), dtype=float)
    if arr.ndim != 1:
        raise ValueError("xs must be a 1-D sequence")
    if np.any(arr < 0):
        raise ValueError("xs must be non-negative")
    if alpha is None:
        alpha = f.alpha()
    total = float(arr.sum())
    prefix = np.cumsum(arr)
    deriv_prefix = np.asarray(f.derivative(prefix), dtype=float)
    weighted = float(np.dot(arr, deriv_prefix))
    lhs = float(f.derivative(total)) * total
    rhs = alpha * weighted
    return ClaimCheck(
        lhs=lhs,
        rhs=rhs,
        alpha=float(alpha),
        inequality6_lhs=weighted,
        inequality6_rhs=float(f.value(total)),
    )


def claim_2_3_tightness_profile(
    f: CostFunction, n: int, spread: float = 1.0
) -> float:
    """Tightness of Claim 2.3 on the equal-terms sequence
    :math:`x_j = \\text{spread}` of length *n* — for monomials this
    tends to 1 as :math:`n \\to \\infty` (the bound is asymptotically
    exact), which experiment E7 plots."""
    check = check_claim_2_3(f, [spread] * n)
    return check.tightness


__all__ = ["ClaimCheck", "check_claim_2_3", "claim_2_3_tightness_profile"]
