"""Cost functions :math:`f_i` for the convex-cost caching problem.

The paper assumes each user :math:`i` pays :math:`f_i(m_i)` where
:math:`m_i` is the user's total miss count and :math:`f_i` is convex,
increasing, differentiable, non-negative with :math:`f_i(0)=0`.  The
central quantity in every guarantee is the *curvature*

.. math::  \\alpha \\;=\\; \\sup_{x>0,\\,i} \\frac{x\\,f_i'(x)}{f_i(x)},

which equals the degree :math:`\\beta` for monomials
:math:`f(x)=c\\,x^{\\beta}` and, more generally, is at most the degree
for polynomials with non-negative coefficients (paper Claim 2.3).

This module provides:

* an abstract :class:`CostFunction` with ``value`` / ``derivative`` /
  integer ``marginal`` accessors (all numpy-vectorised),
* concrete families — :class:`LinearCost`, :class:`MonomialCost`,
  :class:`PolynomialCost`, :class:`PiecewiseLinearCost` (SLA-style),
  :class:`ExponentialCost`, :class:`TableCost` (arbitrary, possibly
  non-convex, for the paper's §2.5 remark that the *algorithm* needs no
  convexity) — plus :class:`ScaledCost` / :class:`SumCost` combinators,
* analytic ``alpha()`` where closed forms exist and a certified numeric
  fallback (:func:`numeric_alpha`),
* convexity / monotonicity validators used by tests and by guarantee
  evaluators that must refuse non-convex inputs.

The paper's §2.5 notes that for non-differentiable costs the algorithm
can use discrete derivatives; :meth:`CostFunction.marginal` is exactly
that discrete derivative :math:`f(m)-f(m-1)`, and
:func:`discrete_alpha` is its curvature analogue on the integer grid.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)

ArrayLike = Union[float, int, np.ndarray]


class CostFunction(ABC):
    """A per-user miss-cost function :math:`f`.

    Subclasses implement :meth:`value` and :meth:`derivative`; both must
    accept scalars or numpy arrays and be defined for all
    :math:`x \\ge 0`.  The base class supplies the discrete marginal,
    curvature estimation, and convexity checking.
    """

    #: Human-readable family name used in experiment tables.
    name: str = "cost"

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @abstractmethod
    def value(self, x: ArrayLike) -> ArrayLike:
        """:math:`f(x)` for :math:`x \\ge 0`."""

    @abstractmethod
    def derivative(self, x: ArrayLike) -> ArrayLike:
        """:math:`f'(x)`; at kinks, the **right** derivative.

        The paper's budget rule reads :math:`f'(m+1)` at integer points;
        using the right derivative keeps budgets well-defined for
        piecewise-linear SLAs.
        """

    def __call__(self, x: ArrayLike) -> ArrayLike:
        return self.value(x)

    def marginal(self, m: int) -> float:
        """Discrete derivative :math:`f(m) - f(m-1)` for integer ``m >= 1``.

        This is the §2.5 replacement for :math:`f'` when :math:`f` is
        not differentiable (or not even continuous).
        """
        if m < 1:
            raise ValueError(f"marginal defined for m >= 1, got {m}")
        return float(self.value(m)) - float(self.value(m - 1))

    # ------------------------------------------------------------------
    # Curvature
    # ------------------------------------------------------------------
    def alpha(self, x_max: float = 1e6) -> float:
        """Curvature :math:`\\sup_{0<x\\le x_{max}} x f'(x)/f(x)`.

        The base implementation is the certified numeric search
        :func:`numeric_alpha`; families with closed forms override it.
        """
        return numeric_alpha(self, x_max=x_max)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def is_valid_at_zero(self, atol: float = 1e-12) -> bool:
        """Check :math:`f(0)=0` (paper's normalisation)."""
        return abs(float(self.value(0.0))) <= atol

    def is_increasing(self, x_max: float = 1e4, samples: int = 2048) -> bool:
        """Numerically check :math:`f` is non-decreasing on ``[0, x_max]``."""
        xs = np.linspace(0.0, x_max, samples)
        ys = np.asarray(self.value(xs), dtype=float)
        return bool(np.all(np.diff(ys) >= -1e-9 * np.maximum(1.0, np.abs(ys[:-1]))))

    def is_convex(self, x_max: float = 1e4, samples: int = 2048) -> bool:
        """Numerically check midpoint convexity on ``[0, x_max]``."""
        xs = np.linspace(0.0, x_max, samples)
        ys = np.asarray(self.value(xs), dtype=float)
        mid = np.asarray(self.value((xs[:-2] + xs[2:]) / 2.0), dtype=float)
        chord = (ys[:-2] + ys[2:]) / 2.0
        scale = np.maximum(1.0, np.abs(chord))
        return bool(np.all(mid <= chord + 1e-8 * scale))

    def is_convex_on_integers(self, m_max: int = 1000) -> bool:
        """Check the marginals :math:`f(m)-f(m-1)` are non-decreasing."""
        ms = np.arange(0, m_max + 1, dtype=float)
        ys = np.asarray(self.value(ms), dtype=float)
        marg = np.diff(ys)
        return bool(np.all(np.diff(marg) >= -1e-9 * np.maximum(1.0, marg[:-1])))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# Concrete families
# ----------------------------------------------------------------------
class LinearCost(CostFunction):
    """:math:`f(x) = w\\,x` — classical *weighted caching* (Young [20]).

    With every :math:`f_i` linear the paper's :math:`\\alpha` equals 1
    and Theorem 1.1 recovers the optimal deterministic
    :math:`k`-competitiveness of Sleator–Tarjan.
    """

    name = "linear"

    def __init__(self, weight: float = 1.0) -> None:
        self.weight = check_positive(weight, "weight")

    def value(self, x: ArrayLike) -> ArrayLike:
        if not isinstance(x, np.ndarray):  # scalar fast path (hot loop)
            return self.weight * float(x)
        return self.weight * np.asarray(x, dtype=float)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        if isinstance(x, np.ndarray):
            return np.full_like(np.asarray(x, dtype=float), self.weight)
        return self.weight

    def marginal(self, m: int) -> float:
        if m < 1:
            raise ValueError(f"marginal defined for m >= 1, got {m}")
        return self.weight

    def alpha(self, x_max: float = 1e6) -> float:
        return 1.0

    def __repr__(self) -> str:
        return f"LinearCost(weight={self.weight!r})"


class MonomialCost(CostFunction):
    """:math:`f(x) = c\\,x^{\\beta}` with :math:`\\beta \\ge 1`.

    The family of Corollary 1.2: the paper's algorithm is
    :math:`\\beta^{\\beta} k^{\\beta}`-competitive, and
    :math:`\\alpha = \\beta` exactly (the ratio :math:`x f'/f` is
    constant).
    """

    name = "monomial"

    def __init__(self, beta: float, scale: float = 1.0) -> None:
        self.beta = check_positive(beta, "beta")
        if self.beta < 1.0:
            raise ValueError(f"beta must be >= 1 for convexity, got {beta}")
        self.scale = check_positive(scale, "scale")

    def value(self, x: ArrayLike) -> ArrayLike:
        if not isinstance(x, np.ndarray):  # scalar fast path (hot loop)
            return self.scale * float(x) ** self.beta
        return self.scale * np.power(np.asarray(x, dtype=float), self.beta)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        if not isinstance(x, np.ndarray):  # scalar fast path (hot loop)
            xf = float(x)
            if xf == 0.0:
                # x^0 at 0 is 1 for beta=1; for beta>1 the derivative is 0.
                return self.scale * self.beta if self.beta == 1.0 else 0.0
            return self.scale * self.beta * xf ** (self.beta - 1.0)
        arr = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = self.scale * self.beta * np.power(arr, self.beta - 1.0)
        out = np.where(arr == 0.0, self.scale * self.beta if self.beta == 1.0 else 0.0, out)
        return out

    def alpha(self, x_max: float = 1e6) -> float:
        return self.beta

    def __repr__(self) -> str:
        return f"MonomialCost(beta={self.beta!r}, scale={self.scale!r})"


class PolynomialCost(CostFunction):
    """:math:`f(x) = \\sum_d c_d x^d` with non-negative coefficients.

    ``coefficients[d]`` is :math:`c_d`; :math:`c_0` must be zero to
    honour :math:`f(0)=0`.  For this family Claim 2.3 gives
    :math:`\\alpha \\le \\deg f`, with equality in the
    :math:`x \\to \\infty` limit, so :meth:`alpha` returns the degree.
    """

    name = "polynomial"

    def __init__(self, coefficients: Sequence[float]) -> None:
        coeffs = np.asarray(coefficients, dtype=float)
        if coeffs.ndim != 1 or coeffs.size < 2:
            raise ValueError("need at least coefficients [c0, c1]")
        if coeffs[0] != 0.0:
            raise ValueError(f"c0 must be 0 so that f(0)=0, got {coeffs[0]}")
        if np.any(coeffs < 0.0):
            raise ValueError("all coefficients must be non-negative")
        if not np.any(coeffs[1:] > 0.0):
            raise ValueError("f must be increasing: need a positive coefficient")
        self.coefficients = coeffs
        self.degree = int(np.max(np.nonzero(coeffs)[0]))

    def value(self, x: ArrayLike) -> ArrayLike:
        arr = np.asarray(x, dtype=float)
        out = np.polynomial.polynomial.polyval(arr, self.coefficients)
        return out if isinstance(x, np.ndarray) else float(out)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        arr = np.asarray(x, dtype=float)
        dcoeffs = np.polynomial.polynomial.polyder(self.coefficients)
        out = np.polynomial.polynomial.polyval(arr, dcoeffs)
        return out if isinstance(x, np.ndarray) else float(out)

    def alpha(self, x_max: float = 1e6) -> float:
        # x f'(x)/f(x) = (sum d c_d x^d) / (sum c_d x^d) <= degree, with the
        # sup attained in the x -> inf limit; it is the exact sup.
        return float(self.degree)

    def __repr__(self) -> str:
        return f"PolynomialCost(coefficients={self.coefficients.tolist()!r})"


class PiecewiseLinearCost(CostFunction):
    """Convex piecewise-linear cost — the paper's SLA motivation.

    The introduction's example: "a user can tolerate up to around
    :math:`M` misses … any number greater than that results in
    substantial degradation".  Encoded as breakpoints
    :math:`0 = b_0 < b_1 < \\dots < b_{s-1}` and slopes
    :math:`0 \\le s_0 \\le s_1 \\le \\dots` where slope ``slopes[j]``
    applies on :math:`[b_j, b_{j+1})`.

    The right derivative is used at kinks, matching
    :meth:`CostFunction.derivative`'s contract.
    """

    name = "piecewise-linear"

    def __init__(self, breakpoints: Sequence[float], slopes: Sequence[float]) -> None:
        bp = np.asarray(breakpoints, dtype=float)
        sl = np.asarray(slopes, dtype=float)
        if bp.ndim != 1 or sl.ndim != 1 or bp.size != sl.size or bp.size == 0:
            raise ValueError("breakpoints and slopes must be equal-length 1-D")
        if bp[0] != 0.0:
            raise ValueError(f"first breakpoint must be 0, got {bp[0]}")
        if np.any(np.diff(bp) <= 0.0):
            raise ValueError("breakpoints must be strictly increasing")
        if np.any(sl < 0.0):
            raise ValueError("slopes must be non-negative")
        if np.any(np.diff(sl) < 0.0):
            raise ValueError("slopes must be non-decreasing (convexity)")
        if not np.any(sl > 0.0):
            raise ValueError("at least one slope must be positive (f increasing)")
        self.breakpoints = bp
        self.slopes = sl
        # Cumulative value at each breakpoint: f(b_j).
        seg = np.diff(bp) * sl[:-1]
        self._values_at_bp = np.concatenate([[0.0], np.cumsum(seg)])
        # Plain-list copies for the scalar fast paths.
        self._bp_list = bp.tolist()
        self._sl_list = sl.tolist()
        self._vals_list = self._values_at_bp.tolist()

    @classmethod
    def sla(cls, free_misses: float, penalty_slope: float, base_slope: float = 0.0) -> "PiecewiseLinearCost":
        """Convenience: ``base_slope`` per miss up to *free_misses*, then
        ``penalty_slope`` per miss beyond (``penalty_slope >= base_slope``)."""
        free_misses = check_positive(free_misses, "free_misses")
        return cls([0.0, free_misses], [base_slope, penalty_slope])

    def _segment_index(self, arr: np.ndarray) -> np.ndarray:
        # Index j such that b_j <= x (right-continuous segments).
        return np.clip(np.searchsorted(self.breakpoints, arr, side="right") - 1, 0, None)

    def _scalar_segment(self, x: float) -> int:
        import bisect

        return max(bisect.bisect_right(self._bp_list, x) - 1, 0)

    def value(self, x: ArrayLike) -> ArrayLike:
        if not isinstance(x, np.ndarray):  # scalar fast path (hot loop)
            xf = float(x)
            j = self._scalar_segment(xf)
            return self._vals_list[j] + self._sl_list[j] * (xf - self._bp_list[j])
        arr = np.asarray(x, dtype=float)
        idx = self._segment_index(arr)
        return self._values_at_bp[idx] + self.slopes[idx] * (arr - self.breakpoints[idx])

    def derivative(self, x: ArrayLike) -> ArrayLike:
        if not isinstance(x, np.ndarray):  # scalar fast path (hot loop)
            return self._sl_list[self._scalar_segment(float(x))]
        arr = np.asarray(x, dtype=float)
        return self.slopes[self._segment_index(arr)].copy()

    def alpha(self, x_max: float = 1e6) -> float:
        """Exact curvature.

        Within each segment :math:`x f'(x)/f(x)` is monotone
        non-decreasing (since :math:`f(x) \\le x f'(x)` for convex
        :math:`f` with :math:`f(0)=0`), so the sup is attained in the
        right-limit at segment ends: evaluate at each breakpoint with
        the *right* slope, plus the :math:`x\\to\\infty` limit, 1.
        """
        best = 1.0
        for j in range(1, self.breakpoints.size):
            b = self.breakpoints[j]
            f_b = self._values_at_bp[j]
            s_right = self.slopes[j]
            # Guard against denormal f(b): the ratio effectively
            # diverges there just as for exact zero.
            if f_b > 1e-300 * max(1.0, b * s_right):
                best = max(best, b * s_right / f_b)
            elif s_right > 0.0:
                # f is ~0 up to b but grows after: ratio diverges at b+.
                return math.inf
        return best

    def __repr__(self) -> str:
        return (
            f"PiecewiseLinearCost(breakpoints={self.breakpoints.tolist()!r}, "
            f"slopes={self.slopes.tolist()!r})"
        )


class ExponentialCost(CostFunction):
    """:math:`f(x) = c\\,(e^{\\lambda x} - 1)`.

    Convex and increasing, but its curvature grows without bound
    (:math:`x f'/f \\to \\lambda x` as :math:`x\\to\\infty`), so
    :meth:`alpha` is only finite over a bounded range — it reports the
    sup over :math:`(0, x_{max}]`, attained at :math:`x_{max}`.  Useful
    for stress-testing guarantees with extreme curvature.
    """

    name = "exponential"

    def __init__(self, rate: float = 1.0, scale: float = 1.0) -> None:
        self.rate = check_positive(rate, "rate")
        self.scale = check_positive(scale, "scale")

    def value(self, x: ArrayLike) -> ArrayLike:
        arr = np.asarray(x, dtype=float)
        out = self.scale * np.expm1(self.rate * arr)
        return out if isinstance(x, np.ndarray) else float(out)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        arr = np.asarray(x, dtype=float)
        out = self.scale * self.rate * np.exp(self.rate * arr)
        return out if isinstance(x, np.ndarray) else float(out)

    def alpha(self, x_max: float = 1e6) -> float:
        # g(x) = rate*x*e^{rx}/(e^{rx}-1) is increasing, so the sup on
        # (0, x_max] is at x_max.
        rx = self.rate * x_max
        if rx > 700.0:  # avoid overflow; e^{rx}/(e^{rx}-1) ~ 1
            return rx
        return rx * math.exp(rx) / math.expm1(rx)

    def __repr__(self) -> str:
        return f"ExponentialCost(rate={self.rate!r}, scale={self.scale!r})"


class TableCost(CostFunction):
    """Arbitrary tabulated cost on integers, linearly interpolated.

    The paper (§2.5) notes ALG-DISCRETE runs for *any* cost function,
    even discontinuous ones, using discrete derivatives.  ``table[m]``
    is :math:`f(m)`; beyond the table the last marginal is extrapolated.
    No convexity is enforced — validators exist so guarantee evaluators
    can refuse it.
    """

    name = "table"

    def __init__(self, table: Sequence[float]) -> None:
        arr = np.asarray(table, dtype=float)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError("table needs at least [f(0), f(1)]")
        if arr[0] != 0.0:
            raise ValueError(f"table[0] must be 0 so that f(0)=0, got {arr[0]}")
        if np.any(np.diff(arr) < 0.0):
            raise ValueError("table must be non-decreasing (f increasing)")
        self.table = arr

    def value(self, x: ArrayLike) -> ArrayLike:
        arr = np.asarray(x, dtype=float)
        n = self.table.size - 1
        last_marginal = self.table[-1] - self.table[-2]
        inside = np.interp(np.clip(arr, 0.0, n), np.arange(n + 1), self.table)
        out = np.where(arr <= n, inside, self.table[-1] + (arr - n) * last_marginal)
        return out if isinstance(x, np.ndarray) else float(out)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        """Right-sided slope of the interpolant (the discrete marginal)."""
        arr = np.asarray(x, dtype=float)
        n = self.table.size - 1
        idx = np.clip(np.floor(arr).astype(int), 0, n - 1)
        slopes = np.diff(self.table)
        last = self.table[-1] - self.table[-2]
        out = np.where(arr >= n, last, slopes[idx])
        return out if isinstance(x, np.ndarray) else float(out)

    def marginal(self, m: int) -> float:
        if m < 1:
            raise ValueError(f"marginal defined for m >= 1, got {m}")
        n = self.table.size - 1
        if m <= n:
            return float(self.table[m] - self.table[m - 1])
        return float(self.table[-1] - self.table[-2])

    def __repr__(self) -> str:
        return f"TableCost(table={self.table.tolist()!r})"


# ----------------------------------------------------------------------
# Combinators
# ----------------------------------------------------------------------
class ScaledCost(CostFunction):
    """:math:`c\\,f(x)` — scaling preserves convexity and :math:`\\alpha`."""

    name = "scaled"

    def __init__(self, base: CostFunction, factor: float) -> None:
        if not isinstance(base, CostFunction):
            raise TypeError("base must be a CostFunction")
        self.base = base
        self.factor = check_positive(factor, "factor")

    def value(self, x: ArrayLike) -> ArrayLike:
        return self.factor * self.base.value(x)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        return self.factor * self.base.derivative(x)

    def marginal(self, m: int) -> float:
        return self.factor * self.base.marginal(m)

    def alpha(self, x_max: float = 1e6) -> float:
        return self.base.alpha(x_max=x_max)

    def __repr__(self) -> str:
        return f"ScaledCost({self.base!r}, factor={self.factor!r})"


class SumCost(CostFunction):
    """:math:`\\sum_j f_j(x)` — sums of convex costs are convex.

    The curvature of a sum is at most the max of the parts'
    curvatures (the ratio :math:`x f'/f` is a weighted mediant), so the
    analytic bound ``max(alpha_j)`` is safe; :meth:`alpha` tightens it
    numerically.
    """

    name = "sum"

    def __init__(self, parts: Sequence[CostFunction]) -> None:
        parts = list(parts)
        if not parts:
            raise ValueError("need at least one part")
        for p in parts:
            if not isinstance(p, CostFunction):
                raise TypeError("every part must be a CostFunction")
        self.parts = parts

    def value(self, x: ArrayLike) -> ArrayLike:
        out = self.parts[0].value(x)
        for p in self.parts[1:]:
            out = out + p.value(x)
        return out

    def derivative(self, x: ArrayLike) -> ArrayLike:
        out = self.parts[0].derivative(x)
        for p in self.parts[1:]:
            out = out + p.derivative(x)
        return out

    def marginal(self, m: int) -> float:
        return float(sum(p.marginal(m) for p in self.parts))

    def alpha(self, x_max: float = 1e6) -> float:
        numeric = numeric_alpha(self, x_max=x_max)
        upper = max(p.alpha(x_max=x_max) for p in self.parts)
        return min(numeric, upper) if math.isfinite(upper) else numeric

    def __repr__(self) -> str:
        return f"SumCost({self.parts!r})"


class CallableCost(CostFunction):
    """Wrap arbitrary ``f`` (and optionally ``f'``) callables.

    When no derivative is supplied, a central finite difference is used
    (right-sided at 0).  Convexity is *not* assumed; run the validators
    before relying on any guarantee.
    """

    name = "callable"

    def __init__(
        self,
        func: Callable[[ArrayLike], ArrayLike],
        deriv: Optional[Callable[[ArrayLike], ArrayLike]] = None,
        name: str = "callable",
        fd_step: float = 1e-6,
    ) -> None:
        self._func = func
        self._deriv = deriv
        self.name = name
        self._fd_step = check_positive(fd_step, "fd_step")

    def value(self, x: ArrayLike) -> ArrayLike:
        return self._func(x)

    def derivative(self, x: ArrayLike) -> ArrayLike:
        if self._deriv is not None:
            return self._deriv(x)
        h = self._fd_step
        arr = np.asarray(x, dtype=float)
        lo = np.maximum(arr - h, 0.0)
        out = (np.asarray(self._func(arr + h), dtype=float) - np.asarray(self._func(lo), dtype=float)) / (
            arr + h - lo
        )
        return out if isinstance(x, np.ndarray) else float(out)

    def __repr__(self) -> str:
        return f"CallableCost(name={self.name!r})"


# ----------------------------------------------------------------------
# Curvature estimation
# ----------------------------------------------------------------------
def curvature_ratio(f: CostFunction, x: ArrayLike) -> ArrayLike:
    """The pointwise ratio :math:`x f'(x)/f(x)` (nan where :math:`f=0`)."""
    arr = np.asarray(x, dtype=float)
    vals = np.asarray(f.value(arr), dtype=float)
    ders = np.asarray(f.derivative(arr), dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(vals > 0.0, arr * ders / vals, np.nan)
    return out if isinstance(x, np.ndarray) else float(out)


def numeric_alpha(
    f: CostFunction,
    x_max: float = 1e6,
    x_min: float = 1e-9,
    coarse: int = 4096,
    refine_rounds: int = 40,
) -> float:
    """Numerically estimate :math:`\\sup_{x_{min} \\le x \\le x_{max}} x f'(x)/f(x)`.

    Log-spaced coarse grid followed by golden-section refinement around
    the best grid cell.  For the closed-form families the result matches
    the analytic value to ~1e-6 relative error (exercised in tests).
    """
    x_max = check_positive(x_max, "x_max")
    x_min = check_positive(x_min, "x_min")
    if x_min >= x_max:
        raise ValueError("x_min must be < x_max")
    xs = np.logspace(math.log10(x_min), math.log10(x_max), coarse)
    ratios = np.asarray(curvature_ratio(f, xs), dtype=float)
    finite = np.isfinite(ratios)
    if not np.any(finite):
        return math.nan
    best_idx = int(np.nanargmax(np.where(finite, ratios, -np.inf)))
    lo = xs[max(best_idx - 1, 0)]
    hi = xs[min(best_idx + 1, xs.size - 1)]
    best = float(ratios[best_idx])

    # Golden-section search for a local max of the (typically unimodal
    # within a cell) ratio.
    invphi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc = float(curvature_ratio(f, c))
    fd = float(curvature_ratio(f, d))
    for _ in range(refine_rounds):
        if math.isnan(fc) or (not math.isnan(fd) and fc < fd):
            a = c
            c, fc = d, fd
            d = a + invphi * (b - a)
            fd = float(curvature_ratio(f, d))
        else:
            b = d
            d, fd = c, fc
            c = b - invphi * (b - a)
            fc = float(curvature_ratio(f, c))
    for v in (fc, fd):
        if not math.isnan(v):
            best = max(best, v)
    return best


def discrete_alpha(f: CostFunction, m_max: int = 10_000) -> float:
    """Integer-grid curvature :math:`\\max_{1\\le m\\le m_{max}} m\\,\\Delta f(m)/f(m)`.

    where :math:`\\Delta f(m) = f(m) - f(m-1)`.  This is the natural
    curvature when costs are only meaningful at integer miss counts
    (e.g. :class:`TableCost`).
    """
    m_max = check_positive_int(m_max, "m_max")
    ms = np.arange(0, m_max + 1, dtype=float)
    vals = np.asarray(f.value(ms), dtype=float)
    marginals = np.diff(vals)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(vals[1:] > 0.0, ms[1:] * marginals / vals[1:], np.nan)
    if not np.any(np.isfinite(ratios)):
        return math.nan
    return float(np.nanmax(ratios))


def combined_alpha(costs: Sequence[CostFunction], x_max: float = 1e6) -> float:
    """The paper's :math:`\\alpha = \\sup_{x,i} x f_i'(x)/f_i(x)` over users."""
    costs = list(costs)
    if not costs:
        raise ValueError("need at least one cost function")
    return max(f.alpha(x_max=x_max) for f in costs)


def validate_paper_assumptions(f: CostFunction, x_max: float = 1e4) -> None:
    """Raise ``ValueError`` unless *f* meets the Theorem 1.1 hypotheses.

    Checks (numerically): :math:`f(0)=0`, non-negative, increasing and
    convex on ``[0, x_max]``.
    """
    if not f.is_valid_at_zero():
        raise ValueError(f"{f!r}: f(0) != 0")
    xs = np.linspace(0.0, x_max, 1024)
    if np.any(np.asarray(f.value(xs), dtype=float) < -1e-12):
        raise ValueError(f"{f!r}: f takes negative values")
    if not f.is_increasing(x_max=x_max):
        raise ValueError(f"{f!r}: f is not non-decreasing on [0, {x_max}]")
    if not f.is_convex(x_max=x_max):
        raise ValueError(f"{f!r}: f is not convex on [0, {x_max}]")


__all__ = [
    "CostFunction",
    "LinearCost",
    "MonomialCost",
    "PolynomialCost",
    "PiecewiseLinearCost",
    "ExponentialCost",
    "TableCost",
    "ScaledCost",
    "SumCost",
    "CallableCost",
    "curvature_ratio",
    "numeric_alpha",
    "discrete_alpha",
    "combined_alpha",
    "validate_paper_assumptions",
]
