"""Offline optima for the multi-tenant convex-cost caching problem.

The competitive ratios in the paper compare against the *offline*
optimum :math:`b_i(\\sigma)`.  Computing it exactly is expensive in
general (the objective couples users through the shared cache and the
convex :math:`f_i`), so this module provides a ladder of tools:

* :func:`exact_offline_opt` — branch-and-bound over
  ``(time, cache contents, per-user miss counts)`` states with an
  admissible cold-miss lower bound; exact on small instances (the E1 /
  E3 experiment grids).
* :func:`belady_misses` — Belady's MIN, *exactly* optimal for the
  single-tenant unit-linear objective, used as the OPT denominator in
  the linear-cost experiments.
* :class:`WeightedBeladyPolicy` — a cost-aware offline heuristic
  (marginal cost divided by forward distance) giving good feasible
  schedules, hence *upper* bounds on OPT, on instances too large for
  branch-and-bound.

A certified *lower* bound on OPT via the fractional convex relaxation
lives in :mod:`repro.core.convex_program`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.sim.policy import EvictionPolicy, SimContext
from repro.sim.trace import Trace
from repro.util.heap import AddressableHeap
from repro.util.validation import check_positive_int


@dataclass
class OfflineOptResult:
    """Result of an offline optimisation.

    Attributes
    ----------
    cost:
        Objective value :math:`\\sum_i f_i(b_i)`.
    user_misses:
        The optimal per-user miss vector :math:`b_i` (fetch misses).
    optimal:
        True when the search completed; False when a node/limit was hit
        and `cost` is only the best feasible value found (an upper
        bound on OPT).
    nodes_explored:
        Search effort, for reporting.
    """

    cost: float
    user_misses: np.ndarray
    optimal: bool
    nodes_explored: int

    def __repr__(self) -> str:
        tag = "optimal" if self.optimal else "upper-bound"
        return (
            f"OfflineOptResult({tag}, cost={self.cost:.6g}, "
            f"misses={self.user_misses.tolist()}, nodes={self.nodes_explored})"
        )


def belady_misses(trace: Trace, k: int) -> int:
    """Total misses of Belady's MIN — the exact OPT for the classical
    (single-tenant, unit-cost) objective."""
    from repro.policies.belady import BeladyPolicy
    from repro.sim.engine import simulate

    result = simulate(trace, BeladyPolicy(), k)
    return result.misses


class WeightedBeladyPolicy(EvictionPolicy):
    """Offline cost-aware heuristic: evict the page with the smallest
    *urgency* ``marginal_cost(owner) / forward_distance``.

    Pages never requested again have urgency 0 and go first.  For unit
    linear costs this reduces exactly to Belady's rule.  Feasible by
    construction, so its cost upper-bounds OPT on any instance.
    """

    name = "weighted-belady"
    requires_future = True
    requires_costs = True

    def __init__(self) -> None:
        self._table: Optional[np.ndarray] = None
        self._costs: Optional[Sequence[CostFunction]] = None
        self._owners: Optional[np.ndarray] = None
        self._T = 0
        self._next_use: Dict[int, int] = {}
        self._misses: Optional[np.ndarray] = None

    def reset(self, ctx: SimContext) -> None:
        if ctx.trace is None:
            raise ValueError("WeightedBeladyPolicy requires the trace")
        if ctx.costs is None:
            raise ValueError("WeightedBeladyPolicy requires cost functions")
        self._table = ctx.trace.next_use_table()
        self._T = ctx.trace.length
        self._costs = ctx.costs
        self._owners = ctx.owners
        self._next_use = {}
        self._misses = np.zeros(max(ctx.num_users, 1), dtype=np.int64)

    def on_hit(self, page: int, t: int) -> None:
        self._next_use[page] = int(self._table[t])

    def on_insert(self, page: int, t: int) -> None:
        self._misses[self._owners[page]] += 1
        self._next_use[page] = int(self._table[t])

    def choose_victim(self, page: int, t: int) -> int:
        best_page = -1
        best_urgency = np.inf
        for candidate, nxt in self._next_use.items():
            if nxt >= self._T:
                return candidate  # dead page: free eviction
            user = int(self._owners[candidate])
            marg = self._costs[user].marginal(int(self._misses[user]) + 1)
            urgency = marg / float(nxt - t)
            if urgency < best_urgency or (
                urgency == best_urgency and candidate < best_page
            ):
                best_urgency = urgency
                best_page = candidate
        return best_page

    def on_evict(self, page: int, t: int) -> None:
        del self._next_use[page]


def heuristic_offline_cost(
    trace: Trace, costs: Sequence[CostFunction], k: int
) -> Tuple[float, np.ndarray]:
    """Cost and miss vector of the :class:`WeightedBeladyPolicy` schedule
    (a feasible solution — an upper bound on OPT)."""
    from repro.sim.engine import simulate
    from repro.sim.metrics import total_cost

    result = simulate(trace, WeightedBeladyPolicy(), k, costs=costs)
    return total_cost(result, costs), result.user_misses


def exact_offline_opt(
    trace: Trace,
    costs: Sequence[CostFunction],
    k: int,
    node_limit: int = 2_000_000,
) -> OfflineOptResult:
    """Exact offline optimum by branch-and-bound.

    Explores eviction decisions depth-first over states
    ``(t, cache, miss-vector)``.  The accumulated cost at a state is a
    function of the miss vector alone (:math:`\\sum_i f_i(c_i)`), so a
    visited-state set is sound.  Pruning uses the admissible *cold-miss*
    bound: every page of user *i* requested in the remaining suffix but
    not resident must miss at least once, so
    :math:`\\sum_i f_i(c_i + \\text{cold}_i)` lower-bounds any
    completion.

    Exponential in the worst case — intended for the small grids of
    experiments E1/E3 (pages :math:`\\lesssim 10`, :math:`T \\lesssim
    40`, :math:`k \\lesssim 5`).  Raises no error on hitting
    ``node_limit``; the result is flagged ``optimal=False`` and its
    cost is the best found (an upper bound).
    """
    k = check_positive_int(k, "k")
    T = trace.length
    n = max(trace.num_users, 1)
    requests = [int(p) for p in trace.requests]
    owners = trace.owners
    if len(costs) < trace.num_users:
        raise ValueError(f"need {trace.num_users} cost functions, got {len(costs)}")

    # Per-page sorted request times, for the cold-miss suffix bound.
    page_times: Dict[int, List[int]] = {}
    for t, p in enumerate(requests):
        page_times.setdefault(p, []).append(t)
    pages = sorted(page_times)
    page_owner = {p: int(owners[p]) for p in pages}

    # f_i on integer grid, precomputed far enough (max possible misses
    # for user i = its total requests).
    per_user_req = np.zeros(n, dtype=np.int64)
    for p in pages:
        per_user_req[page_owner[p]] += len(page_times[p])
    f_table: List[np.ndarray] = []
    for i in range(n):
        grid = np.arange(0, int(per_user_req[i]) + 2, dtype=float)
        f_table.append(np.asarray(costs[i].value(grid), dtype=float))

    def requested_in_suffix(p: int, t: int) -> bool:
        times = page_times[p]
        idx = bisect.bisect_left(times, t)
        return idx < len(times)

    def lower_bound(t: int, cache: frozenset, counts: Tuple[int, ...]) -> float:
        cold = [0] * n
        for p in pages:
            if p not in cache and requested_in_suffix(p, t):
                cold[page_owner[p]] += 1
        return float(
            sum(f_table[i][counts[i] + cold[i]] for i in range(n))
        )

    def value_of(counts: Tuple[int, ...]) -> float:
        return float(sum(f_table[i][counts[i]] for i in range(n)))

    # Initial incumbent from the cost-aware heuristic.
    best_cost, best_misses = heuristic_offline_cost(trace, costs, k)
    best_misses = best_misses.copy()
    optimal = True
    nodes = 0

    visited: set = set()
    # Explicit stack of (t, cache, counts) to avoid recursion limits.
    # We advance through hits/free-inserts inline and only push branch
    # points (full-cache misses).
    stack: List[Tuple[int, frozenset, Tuple[int, ...]]] = [
        (0, frozenset(), tuple([0] * n))
    ]

    while stack:
        t, cache, counts = stack.pop()
        nodes += 1
        if nodes > node_limit:
            optimal = False
            break

        # Fast-forward through hits and free inserts.
        cache_set = set(cache)
        counts_list = list(counts)
        while t < T:
            p = requests[t]
            if p in cache_set:
                t += 1
                continue
            i = page_owner[p]
            counts_list[i] += 1
            if len(cache_set) < k:
                cache_set.add(p)
                t += 1
                continue
            break  # full-cache miss: branch point
        counts = tuple(counts_list)

        if t >= T:
            total = value_of(counts)
            if total < best_cost:
                best_cost = total
                best_misses = np.asarray(counts, dtype=np.int64)
            continue

        cache = frozenset(cache_set)
        state = (t, cache, counts)
        if state in visited:
            continue
        visited.add(state)

        p = requests[t]
        # Admissible bound: p's current miss is already in `counts` and p
        # is inserted in every child, so treat it as resident; children
        # have one page fewer resident, which only raises their bound.
        if lower_bound(t + 1, cache | {p}, counts) >= best_cost:
            continue
        # Branch over victims.  Order: pages never requested again first
        # (free evictions), then by furthest next use — finds good
        # incumbents early.  Note `counts` above already includes the
        # miss for p; the child state starts after inserting p.
        def next_use(q: int) -> int:
            times = page_times[q]
            idx = bisect.bisect_right(times, t)
            return times[idx] if idx < len(times) else T + q  # unique keys for dead pages

        victims = sorted(cache, key=next_use, reverse=True)
        # DFS explores the last-pushed first; push in reverse preference
        # order so the most promising child pops first.
        for victim in reversed(victims):
            child_cache = frozenset(cache_set - {victim} | {p})
            stack.append((t + 1, child_cache, counts))

    return OfflineOptResult(
        cost=float(best_cost),
        user_misses=np.asarray(best_misses, dtype=np.int64),
        optimal=optimal,
        nodes_explored=nodes,
    )


def brute_force_offline_opt(
    trace: Trace, costs: Sequence[CostFunction], k: int
) -> OfflineOptResult:
    """Plain exhaustive search (no pruning, no bound) — exponential.

    Exists solely to validate :func:`exact_offline_opt` on tiny
    instances in tests.
    """
    T = trace.length
    n = max(trace.num_users, 1)
    requests = [int(p) for p in trace.requests]
    owners = trace.owners
    best = {"cost": np.inf, "misses": np.zeros(n, dtype=np.int64)}

    def fvalue(counts: List[int]) -> float:
        return float(sum(costs[i].value(counts[i]) for i in range(n)))

    def recurse(t: int, cache: frozenset, counts: List[int]) -> None:
        while t < T:
            p = requests[t]
            if p in cache:
                t += 1
                continue
            counts = list(counts)
            counts[int(owners[p])] += 1
            if len(cache) < k:
                cache = cache | {p}
                t += 1
                continue
            for victim in sorted(cache):
                recurse(t + 1, (cache - {victim}) | {p}, counts)
            return
        total = fvalue(counts)
        if total < best["cost"]:
            best["cost"] = total
            best["misses"] = np.asarray(counts, dtype=np.int64)

    recurse(0, frozenset(), [0] * n)
    return OfflineOptResult(
        cost=float(best["cost"]),
        user_misses=best["misses"],
        optimal=True,
        nodes_explored=-1,
    )


def exact_weighted_opt_lp(
    trace: Trace, weights: Sequence[float], k: int
) -> OfflineOptResult:
    """Exact offline optimum for **linear** costs via the interval LP.

    The weighted-caching LP (the paper's (CP) with linear objective) is
    known to have integral optimal vertices (the structure behind
    Young's and BBN's primal-dual analyses); HiGHS returns a vertex
    solution, and this function *asserts* integrality, raising
    ``RuntimeError`` if a fractional vertex ever appears, so the result
    is never silently approximate.

    Counting convention: the LP charges **evictions** under the
    no-flush model (pages may stay resident for free at the end), so
    the value lower-bounds the fetch-miss optimum by at most the final
    residents' weight — see DESIGN.md §6.  Scales to instances far
    beyond :func:`exact_offline_opt` (LP size = T variables).
    """
    from repro.core.convex_program import build_program, solve_fractional
    from repro.core.cost_functions import LinearCost

    weights = np.asarray(list(weights), dtype=float)
    if weights.size < trace.num_users:
        raise ValueError(f"need {trace.num_users} weights, got {weights.size}")
    costs = [LinearCost(float(w)) for w in weights[: max(trace.num_users, 1)]]
    program = build_program(trace, k)
    sol = solve_fractional(program, costs)
    fractional = np.sum((sol.x > 1e-6) & (sol.x < 1 - 1e-6))
    if fractional:
        raise RuntimeError(
            f"LP vertex has {fractional} fractional variables; cannot certify "
            "an exact integral optimum on this instance"
        )
    x = np.round(sol.x)
    user_mass = program.user_totals(x)
    return OfflineOptResult(
        cost=float(sol.objective),
        user_misses=np.round(user_mass).astype(np.int64),
        optimal=True,
        nodes_explored=0,
    )


__all__ = [
    "OfflineOptResult",
    "belady_misses",
    "WeightedBeladyPolicy",
    "heuristic_offline_cost",
    "exact_offline_opt",
    "brute_force_offline_opt",
    "exact_weighted_opt_lp",
]
