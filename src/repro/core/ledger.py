"""The primal-dual ledger: a complete record of :math:`(x^\\circ, y^\\circ, z^\\circ)`.

ALG-CONT (:mod:`repro.core.alg_continuous`) fills one of these as it
runs.  The ledger stores *raw* data — request times of every page, the
eviction indicator :math:`x^\\circ(p,j)` with its set-time
:math:`s(p,j)`, the dual jumps :math:`y^\\circ_t`, and the accumulated
:math:`z^\\circ(p,j)` — so the invariant checker
(:mod:`repro.core.invariants`) can recompute every condition of the
paper's Lemma 2.1 from first principles, independently of the
algorithm's internal bookkeeping.

Paper notation mapped to storage
--------------------------------
``request_times[p][j-1]``      :math:`t(p, j)` — time of the *j*-th
                               request of page *p* (1-based *j*).
``x[(p, j)] / set_time[(p,j)]``:math:`x^\\circ(p,j) = 1` set at time
                               :math:`s(p,j)`.
``y[t]``                       :math:`y^\\circ_t` (zero where absent).
``z[(p, j)]``                  :math:`z^\\circ(p,j)`.
``eviction_events``            ``(t, page, user)`` per eviction, from
                               which :math:`m(i,t)` is reconstructed.

All times are 0-based (the paper is 1-based); interval sums translate
accordingly: the paper's :math:`\\sum_{t=t(p,j)+1}^{t(p,j+1)-1} y_t`
over *strictly between* consecutive requests becomes the sum of ``y``
over 0-based times in the open interval ``(t(p,j), t(p,j+1))``.  The
:math:`y_t` raised while *serving* the request at ``t(p,j+1)`` belongs
to the *next* interval boundary per the paper's indexing; in this
implementation the eviction performed at time ``t`` (to admit
:math:`p_t`) contributes to ``y[t]``, and page :math:`p_t`'s new
interval starts at ``t``, so its own interval sums exclude ``y[t]`` —
matching the exclusion of :math:`p_t` from the constraint at time *t*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass
class PrimalDualLedger:
    """Complete run record of ALG-CONT over one trace."""

    num_pages: int
    num_users: int
    T: int

    #: request_times[p] = 0-based times page p was requested, in order.
    request_times: Dict[int, List[int]] = field(default_factory=dict)
    #: (p, j) -> 1 if page p was evicted in its j-th interval (j 1-based).
    x: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: (p, j) -> time the indicator was set (the paper's s(p, j)).
    set_time: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: y[t] — dual jump at time t (only eviction times are non-zero).
    y: Optional[np.ndarray] = None
    #: (p, j) -> accumulated z.
    z: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: (t, page, user) per eviction, in time order.
    eviction_events: List[Tuple[int, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.y is None:
            self.y = np.zeros(self.T, dtype=float)

    # ------------------------------------------------------------------
    # Recording API (used by ALG-CONT)
    # ------------------------------------------------------------------
    def record_request(self, page: int, t: int) -> int:
        """Note a request of *page* at *t*; returns its interval index j."""
        times = self.request_times.setdefault(page, [])
        times.append(t)
        return len(times)

    def record_eviction(self, page: int, user: int, t: int) -> None:
        """Set :math:`x^\\circ(p, j) = 1` for *page*'s current interval."""
        j = self.current_interval(page)
        key = (page, j)
        if self.x.get(key):
            raise ValueError(f"x({page},{j}) already set")
        self.x[key] = 1
        self.set_time[key] = t
        self.eviction_events.append((t, page, user))

    def record_y_jump(self, t: int, delta: float) -> None:
        """Raise :math:`y^\\circ_t` by *delta* (the eviction-time jump)."""
        if delta < 0:
            raise ValueError(f"y must be non-decreasing; got delta={delta}")
        self.y[t] += delta

    def record_z_increase(self, page: int, j: int, delta: float) -> None:
        """Raise :math:`z^\\circ(p, j)` by *delta* (lockstep with y)."""
        if delta < 0:
            raise ValueError(f"z must be non-decreasing; got delta={delta}")
        self.z[(page, j)] = self.z.get((page, j), 0.0) + delta

    # ------------------------------------------------------------------
    # Query API (used by the invariant checker and tests)
    # ------------------------------------------------------------------
    def current_interval(self, page: int) -> int:
        """j such that the page's latest request opened interval j."""
        times = self.request_times.get(page)
        if not times:
            raise KeyError(f"page {page} was never requested")
        return len(times)

    def request_count(self, page: int) -> int:
        """The paper's :math:`r(p, T)`."""
        return len(self.request_times.get(page, ()))

    def interval_bounds(self, page: int, j: int) -> Tuple[int, int]:
        """``(t(p,j), t(p,j+1))`` with ``t(p, r+1) := T`` for the last
        interval (open-ended)."""
        times = self.request_times[page]
        if not (1 <= j <= len(times)):
            raise IndexError(f"page {page} has no interval {j}")
        start = times[j - 1]
        end = times[j] if j < len(times) else self.T
        return start, end

    def y_sum_over_interval(self, page: int, j: int) -> float:
        """:math:`\\sum y_t` for *t* strictly inside interval *j* of *page*,
        i.e. over 0-based times in ``(t(p,j), t(p,j+1))``."""
        start, end = self.interval_bounds(page, j)
        return float(self.y[start + 1 : end].sum())

    def miss_curve(self) -> np.ndarray:
        """``out[t, i]`` = evictions of user *i*'s pages among times
        ``< t`` — the paper's :math:`m(i, t-1)` at 1-based *t*; shape
        ``(T+1, n)``."""
        out = np.zeros((self.T + 1, max(self.num_users, 1)), dtype=np.int64)
        for t, _page, user in self.eviction_events:
            out[t + 1 :, user] += 1
        return out

    def evictions_of_user(self, user: int, up_to: Optional[int] = None) -> int:
        """:math:`m(i, t)` — evictions of *user*'s pages at times ``<= up_to``
        (whole run when ``up_to`` is None)."""
        if up_to is None:
            up_to = self.T
        return sum(1 for t, _p, u in self.eviction_events if u == user and t <= up_to)

    def total_evictions_by_user(self) -> np.ndarray:
        """:math:`m(i, T)` for every user, as an array."""
        out = np.zeros(max(self.num_users, 1), dtype=np.int64)
        for _t, _p, user in self.eviction_events:
            out[user] += 1
        return out

    def objective_value(self, costs) -> float:
        """:math:`\\sum_i f_i(m(i,T))` of the recorded primal solution."""
        m = self.total_evictions_by_user()
        return float(sum(f.value(int(c)) for f, c in zip(costs, m)))

    def x_pairs(self) -> List[Tuple[int, int]]:
        """All (p, j) with :math:`x^\\circ(p,j)=1`, in set-time order."""
        return sorted(self.x, key=lambda key: self.set_time[key])

    def __repr__(self) -> str:
        return (
            f"PrimalDualLedger(T={self.T}, pages={self.num_pages}, "
            f"users={self.num_users}, evictions={len(self.eviction_events)})"
        )


__all__ = ["PrimalDualLedger"]
