"""Two-level budget index for ALG-DISCRETE / ALG-CONT.

The Fig. 3 update rules apply two kinds of bulk change to resident
budgets:

* step 3 — subtract the evicted budget from **every** resident page;
* step 4 — add a (per-eviction) constant to every resident page of
  **one** user.

Both are uniform shifts over their scope, so neither needs to touch
pages individually.  The index keeps:

* a per-user addressable min-heap of stored keys
  :math:`\\kappa'(p) = B_{set}(p) + O_{set} - V_{set}[u]` where
  :math:`O` is the cumulative global subtraction and :math:`V[u]` the
  user's cumulative uplift, both *at set time*;  the current budget is
  :math:`B(p) = \\kappa'(p) - O + V[u]` — within one user all pages
  share the :math:`-O + V[u]` correction, so within-user order is the
  stored-key order;
* a top-level addressable min-heap over users keyed by
  :math:`T_u = \\min_p \\kappa'(p) + V[u]` — adding the common
  :math:`-O` does not change the arg-min across users, so the global
  minimum-budget page is ``top.peek() -> user`` then
  ``user_heap.peek() -> page``.

Cost per operation: O(log k) within the user's heap plus O(log n) in
the top heap; the two bulk updates are O(1) and O(log n) respectively.
This is what makes the algorithm's throughput competitive with
GreedyDual (benchmarked in experiment E9) instead of O(k) per
eviction.

Tie-breaking is deterministic: users tie-break by the insertion order
of their current minimum entry, pages within a user FIFO by insertion.
Both algorithm implementations share this index, so their eviction
sequences agree exactly (tested).

Representation limit: the lazy form stores ``B + O - V[u]``, so two
budgets whose difference is below one ulp of the accumulated offsets
are absorbed and may order arbitrarily (e.g. a 1e-213 budget after an
offset of 1.0).  For the algorithm this is harmless — such budgets are
equal for every practical purpose and any tie-break is admissible —
but exact-arithmetic comparisons in tests use dyadic inputs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.util.heap import AddressableHeap


class BudgetIndex:
    """Budgets over resident pages with O(1)/O(log n) bulk updates."""

    __slots__ = ("_user_heaps", "_top", "_O", "_V", "_user_of_page")

    def __init__(self) -> None:
        self._user_heaps: Dict[int, AddressableHeap[int]] = {}
        self._top: AddressableHeap[int] = AddressableHeap()
        self._O = 0.0  # cumulative global subtraction
        self._V: Dict[int, float] = {}  # cumulative per-user uplift
        self._user_of_page: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._user_of_page)

    def __contains__(self, page: int) -> bool:
        return page in self._user_of_page

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_top(self, user: int) -> None:
        heap = self._user_heaps.get(user)
        if heap is None or not heap:
            if user in self._top:
                self._top.remove(user)
            return
        _page, min_key = heap.peek()
        self._top.push_or_update(user, min_key + self._V.get(user, 0.0))

    def _stored_key(self, user: int, budget: float) -> float:
        return budget + self._O - self._V.get(user, 0.0)

    def _clamp(self, budget: float) -> float:
        """Snap float-noise negatives to 0.

        For convex costs budgets are non-negative in exact arithmetic
        (the minimum is evicted exactly when it reaches 0), but the
        lazy offsets introduce last-ulp rounding; values within
        tolerance of 0 are snapped.  Genuinely negative budgets are
        *legal* for non-convex costs (§2.5 arbitrary-cost mode: the
        same-user uplift ``f'(m+2) - f'(m+1)`` can be negative) and are
        passed through unchanged.
        """
        if budget >= 0.0:
            return budget
        scale = max(1.0, abs(self._O))
        if budget > -1e-9 * scale:
            return 0.0
        return budget

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, page: int, user: int, budget: float) -> None:
        """Add a resident page with a fresh budget."""
        if page in self._user_of_page:
            raise KeyError(f"page {page} already indexed; use refresh()")
        heap = self._user_heaps.get(user)
        if heap is None:
            heap = self._user_heaps[user] = AddressableHeap()
        heap.push(page, self._stored_key(user, budget))
        self._user_of_page[page] = user
        self._refresh_top(user)

    def refresh(self, page: int, budget: float) -> None:
        """Reset a resident page's budget (hit refresh, Fig. 3 step 2)."""
        user = self._user_of_page[page]
        self._user_heaps[user].update(page, self._stored_key(user, budget))
        self._refresh_top(user)

    def refresh_pages(self, user: int, pages, budget: float) -> None:
        """Refresh several resident pages of one *user* to the same
        *budget*, paying the top-heap update once instead of per page.

        Equivalent to ``refresh(p, budget) for p in pages`` (the final
        stored keys and top key are identical); callers must pass pages
        indexed under *user*.  This is the hit-run bulk path of
        ALG-DISCRETE: within a run the user's fresh budget is constant,
        so every hit page of the user refreshes to one value.
        """
        heap = self._user_heaps[user]
        key = self._stored_key(user, budget)
        update = heap.update
        for page in pages:
            update(page, key)
        self._refresh_top(user)

    def remove(self, page: int) -> float:
        """Remove a page, returning its current budget."""
        user = self._user_of_page.pop(page)
        key = self._user_heaps[user].remove(page)
        self._refresh_top(user)
        return self._clamp(key - self._O + self._V.get(user, 0.0))

    def subtract_from_all(self, delta: float) -> None:
        """Fig. 3 step 3: subtract *delta* from every resident budget.

        O(1): both heap levels' orders are invariant to the shift.
        """
        self._O += delta

    def uplift_user(self, user: int, delta: float) -> None:
        """Fig. 3 step 4: add *delta* to every resident page of *user*.

        O(log n): within-user order unchanged; only the user's top-heap
        entry moves.
        """
        self._V[user] = self._V.get(user, 0.0) + delta
        self._refresh_top(user)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def min_page(self) -> Tuple[int, int, float]:
        """``(page, user, budget)`` of the global minimum budget."""
        if not self._top:
            raise IndexError("min_page on empty index")
        user, _ = self._top.peek()
        page, key = self._user_heaps[user].peek()
        return page, user, self._clamp(key - self._O + self._V.get(user, 0.0))

    def budget_of(self, page: int) -> float:
        """Current budget ``B(p)`` of one indexed page."""
        user = self._user_of_page[page]
        key = self._user_heaps[user].key_of(page)
        return self._clamp(key - self._O + self._V.get(user, 0.0))

    def budgets(self) -> Dict[int, float]:
        """Snapshot ``{page: budget}`` over all resident pages."""
        out: Dict[int, float] = {}
        for user, heap in self._user_heaps.items():
            corr = -self._O + self._V.get(user, 0.0)
            for page, key in heap.items():
                out[page] = key + corr
        return out

    def check_invariants(self) -> None:
        """Validate cross-structure consistency (test helper)."""
        for user, heap in self._user_heaps.items():
            heap.check_invariants()
            if heap:
                _page, min_key = heap.peek()
                expect = min_key + self._V.get(user, 0.0)
                assert user in self._top, f"user {user} missing from top heap"
                got = self._top.key_of(user)
                assert abs(got - expect) < 1e-9, f"top key stale for user {user}"
            else:
                assert user not in self._top, f"empty user {user} still in top heap"
        self._top.check_invariants()
        count = sum(len(h) for h in self._user_heaps.values())
        assert count == len(self._user_of_page), "page map out of sync"


__all__ = ["BudgetIndex"]
