"""ALG-DISCRETE — the paper's implementable budget algorithm (Fig. 3).

Each resident page ``p`` carries a budget ``B(p)``.  Let ``m(i, t)`` be
the number of evictions of user *i*'s pages up to time *t* (the paper's
:math:`m(i,t) = \\sum_{p \\in P_i} \\sum_j x^\\circ(p,j)`).  On each
request of page :math:`p_t`:

* **hit, or miss with space** — (fetch if needed and) refresh
  ``B(p_t) ← f'_{i(p_t)}(m(i(p_t), t-1) + 1)``;
* **miss with a full cache** —

  1. evict the resident page ``p`` with the smallest ``B(p)``;
  2. set ``B(p_t) ← f'_{i(p_t)}(m(i(p_t), t-1) + 1)``;
  3. for every other resident ``p'``: ``B(p') ← B(p') - B(p)``;
  4. for every resident ``p'`` owned by the evicted page's user:
     ``B(p') ← B(p') + f'(m+2) - f'(m+1)`` at ``m = m(i(p), t-1)``.

Step 3 is the discrete jump of the dual variable :math:`y_t` by exactly
``B(p)`` (the paper: ":math:`y_t` increases in iteration *t* by the
current value of ``B(p)`` when page ``p`` is evicted"); step 4 keeps
budgets evaluated at the user's *current* eviction count, tracking the
gradient of the convex objective.

Both bulk updates are uniform shifts, handled lazily by the two-level
:class:`~repro.core.budget_index.BudgetIndex` — a full-cache miss costs
``O(log k + log n)``, not ``O(k)``.  Ties break deterministically
(users by their minimum entry's insertion order, pages FIFO within a
user); the paper allows any tie-break, and determinism lets tests check
the ALG-CONT equivalence exactly.

``derivative_mode`` selects the gradient notion (paper §2.5 allows
arbitrary, even discontinuous, costs via discrete derivatives):

* ``'continuous'`` — :math:`f'` (right derivative at kinks); the
  Fig. 3 / Theorem 1.1 setting.
* ``'marginal'`` — the discrete derivative :math:`f(m) - f(m-1)`.
* ``'smoothed'`` — the window-averaged marginal
  :math:`(f(m+W-1)-f(m-1))/W`; a *practical variant* in the spirit of
  §2.5's remark that "variants of our algorithms perform well" in
  production [14]: the pointwise derivative is myopic for SLA costs
  with free-miss allowances (a tenant under allowance has budget 0 and
  churns until it crosses it); averaging over the next ``W`` misses
  anticipates the penalty region.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.budget_index import BudgetIndex
from repro.core.cost_functions import CostFunction
from repro.sim.policy import EvictionPolicy, SimContext

#: Valid gradient notions.
DERIVATIVE_MODES = ("continuous", "marginal", "smoothed")


class AlgDiscrete(EvictionPolicy):
    """The paper's ALG-DISCRETE as an engine policy.

    Parameters
    ----------
    derivative_mode:
        One of :data:`DERIVATIVE_MODES`; see the module docstring.
    smoothing_window:
        The :math:`W` for ``'smoothed'`` mode (ignored otherwise).

    Attributes
    ----------
    evictions_by_user:
        After a run, ``evictions_by_user[i]`` is :math:`m(i, T)` —
        evictions of user *i*'s pages.  (Fetch-miss counts live in the
        engine's :class:`~repro.sim.engine.SimResult`.)
    """

    name = "alg-discrete"
    requires_costs = True

    def __init__(
        self, derivative_mode: str = "continuous", smoothing_window: int = 100
    ) -> None:
        if derivative_mode not in DERIVATIVE_MODES:
            raise ValueError(
                f"derivative_mode must be one of {DERIVATIVE_MODES}, got {derivative_mode!r}"
            )
        self.derivative_mode = derivative_mode
        if smoothing_window < 1:
            raise ValueError(f"smoothing_window must be >= 1, got {smoothing_window}")
        self.smoothing_window = int(smoothing_window)
        if derivative_mode == "smoothed":
            self.name = f"alg-smoothed-{self.smoothing_window}"
        self._costs: Optional[Sequence[CostFunction]] = None
        self._owners: Optional[np.ndarray] = None
        self._owners_list: list = []
        self._index = BudgetIndex()
        self.evictions_by_user: Optional[np.ndarray] = None
        self._fresh_cache: dict = {}

    # ------------------------------------------------------------------
    def reset(self, ctx: SimContext) -> None:
        """Fresh run state; requires ``ctx.costs``."""
        if ctx.costs is None:
            raise ValueError("AlgDiscrete requires per-user cost functions")
        self._costs = ctx.costs
        self._owners = ctx.owners
        # Plain Python list: avoids boxing a numpy scalar per event on
        # the hot path (int(owners[page]) is ~3x a list index).
        self._owners_list = ctx.owners.tolist()
        self._index = BudgetIndex()
        self.evictions_by_user = np.zeros(max(ctx.num_users, 1), dtype=np.int64)
        self._fresh_cache = {}

    # ------------------------------------------------------------------
    def _gradient(self, user: int, m: int) -> float:
        """:math:`f'_i(m)`, the discrete marginal, or the window-averaged
        marginal, per ``derivative_mode``."""
        f = self._costs[user]
        if self.derivative_mode == "continuous":
            return float(f.derivative(float(m)))
        if self.derivative_mode == "marginal":
            return f.marginal(m)
        W = self.smoothing_window
        return (float(f.value(m - 1 + W)) - float(f.value(m - 1))) / W

    def fresh_budget(self, user: int) -> float:
        """``B ← f'_i(m(i, t-1) + 1)`` for a page of *user* being (re)set.

        Cached per user between evictions: the value only changes when
        the user's eviction count does (hot path — every hit refresh).
        """
        cached = self._fresh_cache.get(user)
        if cached is None:
            cached = self._gradient(user, int(self.evictions_by_user[user]) + 1)
            self._fresh_cache[user] = cached
        return cached

    def budget_of(self, page: int) -> float:
        """Current budget ``B(p)`` of a resident page (for inspection/tests)."""
        return self._index.budget_of(page)

    # ------------------------------------------------------------------
    def on_hit(self, page: int, t: int) -> None:
        """Hit refresh: ``B(p_t) <- f'(m+1)`` (Fig. 3, first bullet)."""
        user = self._owners_list[page]
        self._index.refresh(page, self.fresh_budget(user))

    def on_hit_batch(self, pages, t0: int) -> None:
        """Eviction counts are frozen within a hit run, so the per-user
        fresh budget is constant and refreshing a page is idempotent:
        refresh each distinct page exactly once, grouped by user so the
        index pays its top-heap update once per user per run."""
        owners = self._owners_list
        by_user: dict = {}
        for page in dict.fromkeys(pages):
            user = owners[page]
            group = by_user.get(user)
            if group is None:
                by_user[user] = [page]
            else:
                group.append(page)
        refresh_pages = self._index.refresh_pages
        fresh_budget = self.fresh_budget
        for user, group in by_user.items():
            refresh_pages(user, group, fresh_budget(user))

    def on_insert(self, page: int, t: int) -> None:
        """Fetch: index the page with a fresh budget."""
        user = self._owners_list[page]
        self._index.insert(page, user, self.fresh_budget(user))

    def choose_victim(self, page: int, t: int) -> int:
        """Fig. 3 step 1: the resident page with the smallest budget."""
        victim, _user, _budget = self._index.min_page()
        return victim

    def on_evict(self, page: int, t: int) -> None:
        """Fig. 3 steps 3-4: global subtraction + same-user uplift."""
        user = self._owners_list[page]
        budget = self._index.remove(page)

        # Step 3 (Fig. 3): subtract the evicted budget from every other
        # resident page — the discrete y_t jump of size B(p).
        self._index.subtract_from_all(budget)

        # Step 4: the evicted user's pages now face a steeper gradient.
        m_before = int(self.evictions_by_user[user])  # m(i(p), t-1)
        self.evictions_by_user[user] += 1
        self._fresh_cache.pop(user, None)
        uplift = self._gradient(user, m_before + 2) - self._gradient(user, m_before + 1)
        if uplift != 0.0:
            self._index.uplift_user(user, uplift)

    def on_flush(self, page: int, t: int) -> None:
        """Externally-forced removal (e.g. tenant migration): forget the
        page without the Fig. 3 dual updates — the page was not the
        minimum-budget victim, so subtracting its budget from everyone
        would drive other budgets negative, and no miss occurred."""
        self._index.remove(page)

    # ------------------------------------------------------------------
    def resident_budgets(self) -> Dict[int, float]:
        """Snapshot ``{page: B(p)}`` for all resident pages (tests/examples)."""
        return self._index.budgets()

    def __repr__(self) -> str:
        return (
            f"AlgDiscrete(derivative_mode={self.derivative_mode!r}, "
            f"smoothing_window={self.smoothing_window})"
        )


__all__ = ["AlgDiscrete", "DERIVATIVE_MODES"]
