"""Competitive-ratio measurement against the offline optimum ladder.

One call — :func:`measure_competitive` — runs ALG-DISCRETE on an
instance, computes OPT by the strongest affordable method (exact
branch-and-bound, Belady where exact, fractional (CP) lower bound, or
the cost-aware offline heuristic as a last resort), and evaluates the
Theorem 1.1 / Corollary 1.2 bound alongside.  :func:`compare_policies`
runs a whole policy zoo over one instance for the baseline-comparison
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.bounds import theorem_1_1_bound
from repro.core.alg_discrete import AlgDiscrete
from repro.core.convex_program import fractional_opt_lower_bound
from repro.core.cost_functions import CostFunction, combined_alpha
from repro.core.offline import exact_offline_opt, heuristic_offline_cost
from repro.sim.engine import SimResult, simulate
from repro.sim.metrics import cost_of_misses, total_cost
from repro.sim.policy import EvictionPolicy
from repro.sim.trace import Trace

#: OPT estimation methods, strongest first.
OPT_METHODS = ("exact", "fractional", "heuristic")


@dataclass
class CompetitiveMeasurement:
    """ALG vs OPT on one instance."""

    trace_name: str
    k: int
    alpha: float
    alg_cost: float
    alg_misses: np.ndarray
    opt_cost: float
    opt_misses: Optional[np.ndarray]
    opt_method: str
    opt_is_exact: bool
    bound_value: Optional[float]

    @property
    def ratio(self) -> float:
        """Measured cost ratio ALG/OPT.

        When ``opt_method='fractional'`` this is an *upper bound* on
        the true ratio (the denominator lower-bounds OPT); when
        ``'heuristic'`` it is a *lower* bound (denominator
        upper-bounds OPT).
        """
        if self.opt_cost <= 0:
            return np.inf if self.alg_cost > 0 else 1.0
        return self.alg_cost / self.opt_cost

    @property
    def bound_respected(self) -> Optional[bool]:
        """Theorem 1.1 check — only meaningful with an OPT miss vector
        (exact method), since the bound is stated on miss vectors."""
        if self.bound_value is None:
            return None
        return self.alg_cost <= self.bound_value * (1 + 1e-9) + 1e-12


def measure_competitive(
    trace: Trace,
    costs: Sequence[CostFunction],
    k: int,
    opt_method: str = "exact",
    node_limit: int = 2_000_000,
    policy_factory: Callable[[], EvictionPolicy] = AlgDiscrete,
) -> CompetitiveMeasurement:
    """Run the online algorithm and compute OPT by *opt_method*.

    ``opt_method='exact'`` uses branch-and-bound (falls back to flagging
    non-exact if the node limit is hit); ``'fractional'`` solves the
    (CP) relaxation (certified lower bound on OPT, so the reported
    ratio upper-bounds the true one); ``'heuristic'`` uses the
    cost-aware offline schedule (upper bound on OPT, ratio is a lower
    bound).
    """
    if opt_method not in OPT_METHODS:
        raise ValueError(f"opt_method must be one of {OPT_METHODS}, got {opt_method!r}")
    alpha = combined_alpha(costs[: trace.num_users])

    alg_result = simulate(trace, policy_factory(), k, costs=costs)
    alg_cost = total_cost(alg_result, costs)

    opt_misses: Optional[np.ndarray] = None
    bound_value: Optional[float] = None
    if opt_method == "exact":
        opt = exact_offline_opt(trace, costs, k, node_limit=node_limit)
        opt_cost = opt.cost
        opt_misses = opt.user_misses
        opt_is_exact = opt.optimal
        if opt_is_exact:
            bound_value = theorem_1_1_bound(costs, k, opt_misses, alpha=alpha)
    elif opt_method == "fractional":
        opt_cost = fractional_opt_lower_bound(trace, costs, k)
        opt_is_exact = False
    else:
        opt_cost, opt_misses = heuristic_offline_cost(trace, costs, k)
        opt_is_exact = False
        # With an OPT *upper* bound the Theorem 1.1 RHS evaluated on its
        # miss vector is still a valid bound target (f increasing).
        bound_value = theorem_1_1_bound(costs, k, opt_misses, alpha=alpha)

    return CompetitiveMeasurement(
        trace_name=trace.name,
        k=k,
        alpha=alpha,
        alg_cost=alg_cost,
        alg_misses=alg_result.user_misses,
        opt_cost=float(opt_cost),
        opt_misses=opt_misses,
        opt_method=opt_method,
        opt_is_exact=opt_is_exact,
        bound_value=bound_value,
    )


@dataclass
class PolicyComparison:
    """Cost/miss table of many policies on one instance."""

    trace_name: str
    k: int
    rows: List[Dict[str, object]]

    def best(self, key: str = "cost") -> Dict[str, object]:
        return min(self.rows, key=lambda r: r[key])

    def by_policy(self, name: str) -> Dict[str, object]:
        for row in self.rows:
            if row["policy"] == name:
                return row
        raise KeyError(name)


def compare_policies(
    trace: Trace,
    costs: Sequence[CostFunction],
    k: int,
    policy_factories: Dict[str, Callable[[], EvictionPolicy]],
) -> PolicyComparison:
    """Run every policy on the same instance; returns per-policy rows
    with total cost, total misses, and per-user misses."""
    rows: List[Dict[str, object]] = []
    for name, factory in policy_factories.items():
        policy = factory()
        result = simulate(trace, policy, k, costs=costs)
        rows.append(
            {
                "policy": name,
                "cost": total_cost(result, costs),
                "misses": result.misses,
                "miss_ratio": result.miss_ratio,
                "user_misses": result.user_misses.tolist(),
            }
        )
    rows.sort(key=lambda r: r["cost"])
    return PolicyComparison(trace_name=trace.name, k=k, rows=rows)


__all__ = [
    "OPT_METHODS",
    "CompetitiveMeasurement",
    "measure_competitive",
    "PolicyComparison",
    "compare_policies",
]
