"""Parameter-sweep harness.

Experiments are grids: (k, beta, seed, …) → row of measurements.  The
harness enumerates the cartesian product, derives an independent seed
per cell, runs the cell function, and aggregates replicate rows with
mean / min / max — the numerical backbone behind every E* experiment
table.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.util.rng import derive_seed
from repro.util.validation import check_positive_int

CellFn = Callable[..., Dict[str, object]]


@dataclass
class SweepResult:
    """Rows from a sweep plus grouping helpers."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    grid_keys: Tuple[str, ...] = ()

    def grouped(
        self, by: Sequence[str], value: str, agg: str = "mean"
    ) -> List[Dict[str, object]]:
        """Aggregate *value* over replicates grouped by *by* columns.

        ``agg`` ∈ {mean, min, max, median}.  Non-finite and non-numeric
        values are dropped (bools are flags, not measurements — a
        ``True`` silently averaging as 1.0 once hid a broken column);
        groups with none left report nan.
        """
        groups: Dict[Tuple, List[float]] = {}
        order: List[Tuple] = []
        for row in self.rows:
            key = tuple(row[b] for b in by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            v = row.get(value)
            if (
                isinstance(v, (int, float))
                and not isinstance(v, bool)
                and math.isfinite(float(v))
            ):
                groups[key].append(float(v))
        agg_fn = {
            "mean": np.mean,
            "min": np.min,
            "max": np.max,
            "median": np.median,
        }[agg]
        out = []
        for key in order:
            vals = groups[key]
            row = dict(zip(by, key))
            row[f"{value}_{agg}"] = float(agg_fn(vals)) if vals else math.nan
            row["replicates"] = len(vals)
            out.append(row)
        return out

    def column(self, name: str) -> List[object]:
        return [row[name] for row in self.rows]


def _invoke_cell(cell: CellFn, kwargs: Dict[str, object]) -> Dict[str, object]:
    """Top-level helper so worker processes can unpickle the call."""
    return cell(**kwargs)


def run_sweep(
    cell: CellFn,
    grid: Mapping[str, Sequence[object]],
    replicates: int = 1,
    base_seed: int = 0,
    include_seed: bool = True,
    workers: Optional[int] = None,
) -> SweepResult:
    """Run *cell* over the cartesian product of *grid*.

    ``cell(**params, seed=...)`` must return a dict of measurements
    (the grid params are merged into each row automatically).  Each
    grid point gets ``replicates`` independent runs with seeds derived
    deterministically from ``base_seed`` and the cell index, so results
    are identical whether run serially or in parallel.

    Parameters
    ----------
    workers:
        ``None`` (default) runs serially.  An integer runs cells in a
        ``ProcessPoolExecutor`` with that many workers — *cell* must
        then be a picklable top-level function.  Row order matches the
        serial order either way.
    """
    replicates = check_positive_int(replicates, "replicates")
    keys = list(grid.keys())
    result = SweepResult(grid_keys=tuple(keys))

    jobs: List[Tuple[Dict[str, object], Dict[str, object]]] = []
    cell_index = 0
    for combo in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        for rep in range(replicates):
            seed = derive_seed(base_seed, cell_index)
            cell_index += 1
            kwargs = dict(params)
            merged = dict(params)
            if include_seed:
                kwargs["seed"] = seed
                merged["seed"] = seed
            merged["replicate"] = rep
            jobs.append((kwargs, merged))

    if workers is None:
        outputs = [cell(**kwargs) for kwargs, _m in jobs]
    else:
        workers = check_positive_int(workers, "workers")
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            outputs = list(
                pool.map(_invoke_cell, [cell] * len(jobs), [kw for kw, _m in jobs])
            )

    for (_kwargs, merged), row in zip(jobs, outputs):
        merged = dict(merged)
        merged.update(row)
        result.rows.append(merged)
    return result


__all__ = ["SweepResult", "run_sweep", "CellFn"]
