"""Statistical helpers for experiment reporting.

Replicated measurements want uncertainty estimates: this module
provides summary statistics with percentile-bootstrap confidence
intervals and a simple paired comparison, used by the full-mode
experiment reports and available to library users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.rng import RandomSource, ensure_rng
from repro.util.validation import check_in_range, check_positive_int


@dataclass(frozen=True)
class Summary:
    """Mean with a bootstrap confidence interval."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± [{self.ci_low:.4g}, {self.ci_high:.4g}] "
            f"({int(self.confidence * 100)}% CI, n={self.n})"
        )


def bootstrap_summary(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: RandomSource = 0,
) -> Summary:
    """Mean, std and a percentile-bootstrap CI of the mean."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    confidence = check_in_range(confidence, "confidence", 0.0, 1.0)
    resamples = check_positive_int(resamples, "resamples")
    rng = ensure_rng(seed)
    if arr.size == 1:
        v = float(arr[0])
        return Summary(v, 0.0, v, v, 1, confidence)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    lo = float(np.percentile(means, 100 * (1 - confidence) / 2))
    hi = float(np.percentile(means, 100 * (1 + confidence) / 2))
    return Summary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)),
        ci_low=lo,
        ci_high=hi,
        n=int(arr.size),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """A beats B? Paired differences with a bootstrap CI."""

    mean_diff: float
    ci_low: float
    ci_high: float
    fraction_a_wins: float
    n: int

    @property
    def significant(self) -> bool:
        """CI of (B - A) excludes 0 — a clear winner either way."""
        return self.ci_low > 0 or self.ci_high < 0


def paired_comparison(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: RandomSource = 0,
) -> PairedComparison:
    """Bootstrap the paired differences ``b - a`` (positive = A smaller,
    i.e. A wins when lower-is-better)."""
    arr_a = np.asarray(list(a), dtype=float)
    arr_b = np.asarray(list(b), dtype=float)
    if arr_a.shape != arr_b.shape or arr_a.size == 0:
        raise ValueError("a and b must be equal-length, non-empty")
    diffs = arr_b - arr_a
    rng = ensure_rng(seed)
    if diffs.size == 1:
        d = float(diffs[0])
        return PairedComparison(d, d, d, float(d > 0), 1)
    idx = rng.integers(0, diffs.size, size=(resamples, diffs.size))
    means = diffs[idx].mean(axis=1)
    return PairedComparison(
        mean_diff=float(diffs.mean()),
        ci_low=float(np.percentile(means, 100 * (1 - confidence) / 2)),
        ci_high=float(np.percentile(means, 100 * (1 + confidence) / 2)),
        fraction_a_wins=float((diffs > 0).mean()),
        n=int(diffs.size),
    )


__all__ = ["Summary", "bootstrap_summary", "PairedComparison", "paired_comparison"]
