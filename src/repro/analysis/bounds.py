"""Evaluators for the paper's theoretical guarantees.

Theorem 1.1 is stated in *miss-vector* form —
:math:`\\sum_i f_i(a_i) \\le \\sum_i f_i(\\alpha k\\, b_i)` — which is
stronger than a single multiplicative ratio; :func:`theorem_1_1_bound`
evaluates the right-hand side for a measured OPT miss vector.  For
monomials it collapses to the scalar :math:`\\beta^\\beta k^\\beta`
factor of Corollary 1.2 (:func:`corollary_1_2_factor`).  Theorem 1.3's
bi-criteria bound replaces :math:`k` with :math:`k/(k-h+1)`
(:func:`theorem_1_3_bound`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.cost_functions import CostFunction, combined_alpha
from repro.util.validation import check_positive_int


def theorem_1_1_bound(
    costs: Sequence[CostFunction],
    k: int,
    opt_misses: np.ndarray,
    alpha: float | None = None,
) -> float:
    """RHS of Theorem 1.1: :math:`\\sum_i f_i(\\alpha k\\, b_i)`."""
    k = check_positive_int(k, "k")
    misses = np.asarray(opt_misses, dtype=float)
    if alpha is None:
        alpha = combined_alpha(costs[: misses.size])
    return float(
        sum(f.value(alpha * k * b) for f, b in zip(costs, misses))
    )


def theorem_1_3_bound(
    costs: Sequence[CostFunction],
    k: int,
    h: int,
    opt_misses: np.ndarray,
    alpha: float | None = None,
) -> float:
    """RHS of Theorem 1.3:
    :math:`\\sum_i f_i\\bigl(\\alpha \\tfrac{k}{k-h+1} b_i\\bigr)` where
    :math:`b_i` are the misses of OPT *with cache size h*."""
    k = check_positive_int(k, "k")
    h = check_positive_int(h, "h")
    if h > k:
        raise ValueError(f"need h <= k, got h={h} > k={k}")
    misses = np.asarray(opt_misses, dtype=float)
    if alpha is None:
        alpha = combined_alpha(costs[: misses.size])
    factor = alpha * k / (k - h + 1)
    return float(sum(f.value(factor * b) for f, b in zip(costs, misses)))


def corollary_1_2_factor(beta: float, k: int) -> float:
    """Corollary 1.2's scalar competitive factor :math:`\\beta^\\beta k^\\beta`."""
    k = check_positive_int(k, "k")
    if beta < 1:
        raise ValueError(f"beta must be >= 1, got {beta}")
    return float(beta**beta) * float(k**beta)


def theorem_1_4_floor(n: int, beta: float) -> float:
    """Theorem 1.4's concrete lower-bound constant :math:`(n/4)^\\beta`
    for the §4 instance (``k = n - 1``)."""
    check_positive_int(n, "n")
    return float((n / 4.0) ** beta)


def bound_holds(
    alg_cost: float, bound_value: float, rtol: float = 1e-9
) -> bool:
    """Whether a measured algorithm cost respects a theoretical bound."""
    return alg_cost <= bound_value * (1.0 + rtol) + 1e-12


__all__ = [
    "theorem_1_1_bound",
    "theorem_1_3_bound",
    "corollary_1_2_factor",
    "theorem_1_4_floor",
    "bound_holds",
]
