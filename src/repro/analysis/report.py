"""Plain-text reporting: aligned ASCII tables, simple bar/line charts,
and CSV export.  (No plotting dependency is available offline; every
experiment prints its table and series so the paper-shape checks are
readable directly in a terminal or log.)
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, List, Optional, Sequence


def _format_cell(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return format(value, floatfmt)
    return str(value)


def ascii_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    floatfmt: str = ".4g",
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned monospace table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format_cell(row.get(c, ""), floatfmt) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in table)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in table:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    top = max((v for v in values if math.isfinite(v)), default=0.0)
    label_w = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        if not math.isfinite(value) or top <= 0:
            bar = "?"
        else:
            bar = "#" * max(1, int(round(width * value / top))) if value > 0 else ""
        lines.append(f"{label.ljust(label_w)}  {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def ascii_series(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    title: Optional[str] = None,
    logy: bool = False,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series gets a marker (a, b, c, …); overlapping points show
    the later series' marker.  With ``logy`` values are log10-scaled
    (non-positive values are dropped).
    """
    pts: List[tuple[float, float, str]] = []
    markers = "abcdefghij"
    legend = []
    for idx, (name, ys) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker}={name}")
        for x, y in zip(xs, ys):
            y = float(y)
            if logy:
                if y <= 0:
                    continue
                y = math.log10(y)
            if math.isfinite(float(x)) and math.isfinite(y):
                pts.append((float(x), y, marker))
    lines = [title] if title else []
    lines.append("legend: " + ", ".join(legend) + ("  [log10 y]" if logy else ""))
    if not pts:
        lines.append("(no finite points)")
        return "\n".join(lines)
    xmin = min(p[0] for p in pts)
    xmax = max(p[0] for p in pts)
    ymin = min(p[1] for p in pts)
    ymax = max(p[1] for p in pts)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, m in pts:
        col = int(round((x - xmin) / xspan * (width - 1)))
        row = height - 1 - int(round((y - ymin) / yspan * (height - 1)))
        grid[row][col] = m
    for i, row in enumerate(grid):
        yval = ymax - i * yspan / (height - 1) if height > 1 else ymax
        lines.append(f"{yval:>9.3g} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':10} {xmin:<.4g}{'':{max(1, width - 16)}}{xmax:>.4g}")
    return "\n".join(lines)


def to_csv(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Serialise dict-rows to CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def write_csv(
    path: str, rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None
) -> None:
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(to_csv(rows, columns))


__all__ = ["ascii_table", "ascii_bars", "ascii_series", "to_csv", "write_csv"]
