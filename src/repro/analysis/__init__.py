"""Analysis utilities: competitive-ratio measurement, theoretical bound
evaluators, parameter sweeps, and plain-text reporting.
"""

from repro.analysis.bounds import (
    bound_holds,
    corollary_1_2_factor,
    theorem_1_1_bound,
    theorem_1_3_bound,
    theorem_1_4_floor,
)
from repro.analysis.competitive import (
    OPT_METHODS,
    CompetitiveMeasurement,
    PolicyComparison,
    compare_policies,
    measure_competitive,
)
from repro.analysis.report import ascii_bars, ascii_series, ascii_table, to_csv, write_csv
from repro.analysis.stats import PairedComparison, Summary, bootstrap_summary, paired_comparison
from repro.analysis.sweep import SweepResult, run_sweep
from repro.analysis.worst_case import WorstCaseResult, search_worst_ratio

__all__ = [
    "theorem_1_1_bound",
    "theorem_1_3_bound",
    "corollary_1_2_factor",
    "theorem_1_4_floor",
    "bound_holds",
    "OPT_METHODS",
    "CompetitiveMeasurement",
    "measure_competitive",
    "PolicyComparison",
    "compare_policies",
    "ascii_table",
    "ascii_bars",
    "ascii_series",
    "to_csv",
    "write_csv",
    "SweepResult",
    "run_sweep",
    "WorstCaseResult",
    "search_worst_ratio",
    "Summary",
    "bootstrap_summary",
    "PairedComparison",
    "paired_comparison",
]
