"""Adversarial search for worst-case competitive ratios.

Random instances are benign (E1 measures ratios far below the
`β^β k^β` ceiling); this module *hunts* for bad instances with a
mutation-based local search over request sequences, maximising the
measured ratio ALG / exact-OPT.  Experiment E12 uses it to probe how
much of the theoretical gap is reachable by search — and to check the
bound survives adversarial instance optimisation, a much stronger test
than random sampling.

The search is deliberately simple (hill climbing with restarts and
occasional double mutations): the point is coverage pressure, not
state-of-the-art optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.bounds import theorem_1_1_bound
from repro.core.alg_discrete import AlgDiscrete
from repro.core.cost_functions import CostFunction, combined_alpha
from repro.core.offline import exact_offline_opt
from repro.sim.engine import simulate
from repro.sim.metrics import total_cost
from repro.sim.policy import EvictionPolicy
from repro.sim.trace import Trace
from repro.util.rng import RandomSource, ensure_rng
from repro.util.validation import check_positive_int


@dataclass
class WorstCaseResult:
    """Outcome of one adversarial search."""

    trace: Trace
    ratio: float
    alg_cost: float
    opt_cost: float
    opt_misses: np.ndarray
    bound_value: float
    evaluations: int

    @property
    def bound_respected(self) -> bool:
        return self.alg_cost <= self.bound_value * (1 + 1e-9)

    def __repr__(self) -> str:
        return (
            f"WorstCaseResult(ratio={self.ratio:.4g}, "
            f"bound={self.bound_value:.4g}, evals={self.evaluations})"
        )


def _evaluate(
    requests: np.ndarray,
    owners: np.ndarray,
    costs: Sequence[CostFunction],
    k: int,
    alpha: float,
    policy_factory: Callable[[], EvictionPolicy],
) -> tuple[float, float, float, np.ndarray, float]:
    trace = Trace(requests, owners)
    alg = simulate(trace, policy_factory(), k, costs=costs)
    alg_cost = total_cost(alg, costs)
    opt = exact_offline_opt(trace, costs, k)
    ratio = alg_cost / opt.cost if opt.cost > 0 else (np.inf if alg_cost > 0 else 1.0)
    bound = theorem_1_1_bound(costs, k, opt.user_misses, alpha=alpha)
    return ratio, alg_cost, opt.cost, opt.user_misses, bound


def search_worst_ratio(
    costs: Sequence[CostFunction],
    owners: Sequence[int],
    k: int,
    T: int = 24,
    iterations: int = 300,
    restarts: int = 3,
    seed: RandomSource = None,
    policy_factory: Callable[[], EvictionPolicy] = AlgDiscrete,
) -> WorstCaseResult:
    """Hill-climb request sequences to maximise ALG / exact-OPT.

    Parameters
    ----------
    costs, owners, k:
        The fixed instance skeleton (page universe = ``len(owners)``).
    T:
        Sequence length (keep small: every evaluation solves exact OPT).
    iterations:
        Mutation steps per restart; each step flips 1-2 positions to
        random pages and keeps the change iff the ratio does not drop.
    restarts:
        Independent random starting sequences.
    seed:
        Reproducibility.

    Returns the best instance found across all restarts.
    """
    check_positive_int(T, "T")
    check_positive_int(iterations, "iterations")
    check_positive_int(restarts, "restarts")
    owners_arr = np.asarray(list(owners), dtype=np.int64)
    num_pages = owners_arr.size
    rng = ensure_rng(seed)
    alpha = combined_alpha(costs[: int(owners_arr.max()) + 1])

    best: Optional[WorstCaseResult] = None
    evaluations = 0
    for _r in range(restarts):
        requests = rng.integers(0, num_pages, size=T).astype(np.int64)
        ratio, alg_cost, opt_cost, opt_misses, bound = _evaluate(
            requests, owners_arr, costs, k, alpha, policy_factory
        )
        evaluations += 1
        for _i in range(iterations):
            candidate = requests.copy()
            flips = 1 if rng.random() < 0.7 else 2
            for _f in range(flips):
                pos = int(rng.integers(0, T))
                candidate[pos] = int(rng.integers(0, num_pages))
            c_ratio, c_alg, c_opt, c_misses, c_bound = _evaluate(
                candidate, owners_arr, costs, k, alpha, policy_factory
            )
            evaluations += 1
            if c_ratio >= ratio:
                requests = candidate
                ratio, alg_cost, opt_cost, opt_misses, bound = (
                    c_ratio,
                    c_alg,
                    c_opt,
                    c_misses,
                    c_bound,
                )
        result = WorstCaseResult(
            trace=Trace(requests, owners_arr, name="worst-case-search"),
            ratio=ratio,
            alg_cost=alg_cost,
            opt_cost=opt_cost,
            opt_misses=opt_misses,
            bound_value=bound,
            evaluations=evaluations,
        )
        if best is None or result.ratio > best.ratio:
            best = result
    assert best is not None
    return best


__all__ = ["WorstCaseResult", "search_worst_ratio"]
