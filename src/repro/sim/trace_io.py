"""CSV import/export for request traces.

External traces (production buffer-pool logs, other simulators) rarely
use dense integer ids.  :func:`load_csv` accepts arbitrary page/tenant
labels, densifies them, and returns the mapping so results can be
reported in the original vocabulary; :func:`save_csv` writes the
symmetric format.

Format: a header line then one request per row::

    page,tenant
    tbl1:4711,customer-a
    tbl1:4712,customer-a
    idx9:17,customer-b

(An optional leading ``t`` column with the request index is accepted on
load — rows are used in file order regardless — and written on save.)

Paths ending in ``.gz`` are read and written gzip-compressed
transparently, so large replay traces (the serving subsystem's
:func:`repro.serve.client.load_trace_file`) ship compressed.

Memory behaviour: both directions are **streaming**.  :func:`load_csv`
parses row-by-row into chunked ``int64`` buffers (it must return an
in-RAM :class:`Trace`, so the result itself is the only O(T) object —
no Python list of boxed ints is ever built), and :func:`save_csv`
writes row-by-row from either a :class:`Trace` or a columnar
:class:`~repro.sim.colstore.TraceReader`, so a trace larger than RAM
exports with flat memory.  For traces that should *stay* out of core,
convert to the columnar format instead::

    python -m repro.sim.trace_io convert trace.csv.gz trace.col
    python -m repro.sim.trace_io info trace.col
    python -m repro.sim.trace_io convert trace.col back.csv

CSV↔columnar round-trips preserve the label vocabulary (columnar label
files hold the same first-appearance mapping :func:`load_csv` builds).
"""

from __future__ import annotations

import csv
import gzip
import io
import sys
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Union

import numpy as np

from repro.sim.trace import Trace

#: Rows accumulated per parse buffer before a new chunk is started.
_CSV_CHUNK = 1 << 16


def _open_text(path: str, mode: str) -> TextIO:
    """Open *path* for text I/O, gzip-compressed when it ends ``.gz``."""
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


@dataclass
class LoadedTrace:
    """A densified trace plus label mappings back to the source file."""

    trace: Trace
    page_labels: List[str]
    tenant_labels: List[str]

    def page_id(self, label: str) -> int:
        return self.page_labels.index(label)

    def tenant_id(self, label: str) -> int:
        return self.tenant_labels.index(label)


def load_csv(source: Union[str, TextIO], name: str = "csv-trace") -> LoadedTrace:
    """Read a ``page,tenant`` CSV into a dense :class:`Trace`.

    Pages and tenants are densified in first-appearance order.  A page
    appearing under two different tenants is an error (the model's
    ownership map is per page).  A path ending ``.gz`` is decompressed
    transparently.  Parsing is single-pass with chunked numpy request
    buffers: auxiliary memory beyond the returned trace is the id maps
    plus one 64 Ki-row chunk.
    """
    close = False
    if isinstance(source, str):
        fh: TextIO = _open_text(source, "r")
        close = True
    else:
        fh = source
    try:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            header = None
        cols = (
            {label.strip(): i for i, label in enumerate(header)}
            if header is not None
            else {}
        )
        if not {"page", "tenant"} <= cols.keys():
            raise ValueError(
                f"CSV must have 'page' and 'tenant' columns, got {header}"
            )
        pcol, tcol = cols["page"], cols["tenant"]
        page_ids: Dict[str, int] = {}
        tenant_ids: Dict[str, int] = {}
        owner_chunks: List[np.ndarray] = []
        owner_buf = np.empty(_CSV_CHUNK, dtype=np.int64)
        owner_fill = 0
        chunks: List[np.ndarray] = []
        buf = np.empty(_CSV_CHUNK, dtype=np.int64)
        fill = 0
        total = 0
        for lineno, row in enumerate(reader, start=2):
            if not row:  # blank line (csv yields an empty list)
                continue
            try:
                page_label = row[pcol]
                tenant_label = row[tcol]
            except IndexError:
                raise ValueError(f"line {lineno}: missing page/tenant") from None
            tid = tenant_ids.setdefault(tenant_label, len(tenant_ids))
            pid = page_ids.get(page_label)
            if pid is None:
                pid = page_ids[page_label] = len(page_ids)
                # First appearance fixes the owner (in pid order, so the
                # owner chunks concatenate straight into the array).
                owner_buf[owner_fill] = tid
                owner_fill += 1
                if owner_fill == _CSV_CHUNK:
                    owner_chunks.append(owner_buf)
                    owner_buf = np.empty(_CSV_CHUNK, dtype=np.int64)
                    owner_fill = 0
            else:
                nfull = len(owner_chunks) * _CSV_CHUNK
                known = (
                    owner_chunks[pid // _CSV_CHUNK][pid % _CSV_CHUNK]
                    if pid < nfull
                    else owner_buf[pid - nfull]
                )
                if known != tid:
                    raise ValueError(
                        f"line {lineno}: page {page_label!r} owned by two tenants"
                    )
            buf[fill] = pid
            fill += 1
            if fill == _CSV_CHUNK:
                chunks.append(buf)
                buf = np.empty(_CSV_CHUNK, dtype=np.int64)
                fill = 0
                total += _CSV_CHUNK
        total += fill
        if total == 0:
            raise ValueError("CSV contains no requests")
        chunks.append(buf[:fill])
        owner_chunks.append(owner_buf[:owner_fill])
        requests = np.concatenate(chunks)
        owners = np.concatenate(owner_chunks)
        trace = Trace(requests, owners, name=name)
        return LoadedTrace(
            trace=trace,
            page_labels=list(page_ids),
            tenant_labels=list(tenant_ids),
        )
    finally:
        if close:
            fh.close()


def _request_chunks(trace, chunk: int = _CSV_CHUNK) -> Iterator[np.ndarray]:
    """Request-id chunks in trace order, from an in-RAM :class:`Trace`
    (array slices) or a columnar reader (mmap'd segment views)."""
    requests = getattr(trace, "requests", None)
    if requests is not None:
        for lo in range(0, len(requests), chunk):
            yield requests[lo : lo + chunk]
    else:
        for _t0, view in trace.batches(chunk):
            yield view


def save_csv(
    trace,
    target: Union[str, TextIO],
    page_labels: Optional[Sequence[str]] = None,
    tenant_labels: Optional[Sequence[str]] = None,
) -> None:
    """Write a trace as ``t,page,tenant`` rows.

    *trace* may be a :class:`Trace` or a columnar
    :class:`~repro.sim.colstore.TraceReader` — a reader is streamed
    chunk-by-chunk, so memory stays flat regardless of length.  Labels
    default to ``p<id>`` / ``tenant<id>``; pass the mappings from
    :class:`LoadedTrace` to round-trip external vocabulary.  A path
    ending ``.gz`` is gzip-compressed transparently.
    """
    if page_labels is not None and len(page_labels) < trace.num_pages:
        raise ValueError(f"need {trace.num_pages} page labels")
    if tenant_labels is not None and len(tenant_labels) < trace.num_users:
        raise ValueError(f"need {trace.num_users} tenant labels")
    owners = np.asarray(trace.owners)
    close = False
    if isinstance(target, str):
        fh: TextIO = _open_text(target, "w")
        close = True
    else:
        fh = target
    try:
        writer = csv.writer(fh)
        writer.writerow(["t", "page", "tenant"])
        t = 0
        for chunk in _request_chunks(trace):
            tids = owners[chunk]
            for pid, tid in zip(chunk.tolist(), tids.tolist()):
                page = (
                    page_labels[pid] if page_labels is not None else f"p{pid}"
                )
                tenant = (
                    tenant_labels[tid]
                    if tenant_labels is not None
                    else f"tenant{tid}"
                )
                writer.writerow([t, page, tenant])
                t += 1
    finally:
        if close:
            fh.close()


def round_trip(trace: Trace) -> Trace:
    """save→load round trip (testing / format sanity).

    Loading densifies ids in first-appearance order, so the result is
    the original trace *up to relabelling*; it is bit-identical exactly
    when pages first appear in increasing id order and ownership blocks
    follow suit.  Access structure (hit/miss behaviour under any
    policy) is always preserved.
    """
    buf = io.StringIO()
    save_csv(trace, buf)
    buf.seek(0)
    return load_csv(buf, name=trace.name).trace


# ----------------------------------------------------------------------
# CLI: python -m repro.sim.trace_io {convert,info}
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    """CSV↔columnar conversion and columnar inspection.

    ``convert`` picks the direction from the source: a columnar trace
    directory exports to CSV (label vocabulary restored from the
    directory's label files), anything else ingests to columnar —
    ``page,tenant`` CSV by default, or a key-value access log with
    ``--kv-log``.  Both directions stream with bounded memory.
    """
    import argparse

    from repro.sim.colstore import (
        DEFAULT_SEGMENT_ROWS,
        convert_csv,
        convert_kv_log,
        is_columnar,
        open_trace,
    )

    parser = argparse.ArgumentParser(
        prog="repro-trace", description=main.__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    conv = sub.add_parser(
        "convert", help="CSV <-> columnar conversion (direction inferred)"
    )
    conv.add_argument("source", help="CSV path (.gz ok), kv log, or columnar dir")
    conv.add_argument("dest", help="output columnar dir or CSV path (.gz ok)")
    conv.add_argument(
        "--dtype", choices=("int32", "int64"), default="int32",
        help="page-id storage width for CSV->columnar",
    )
    conv.add_argument(
        "--segment-rows", type=int, default=DEFAULT_SEGMENT_ROWS,
        help="requests per columnar segment file",
    )
    conv.add_argument("--name", default=None, help="trace name in the header")
    conv.add_argument(
        "--no-labels", action="store_true",
        help="CSV->columnar: skip writing the label vocabulary files",
    )
    conv.add_argument(
        "--kv-log", action="store_true",
        help="ingest SOURCE as a delimited key-value access log "
        "(--key-col/--tenant-col pick the fields; ids are densified "
        "with a spillable map)",
    )
    conv.add_argument("--key-col", type=int, default=1)
    conv.add_argument("--tenant-col", type=int, default=4)
    conv.add_argument("--delimiter", default=",")
    conv.add_argument(
        "--limit", type=int, default=None,
        help="columnar->CSV: export only the first N requests",
    )

    info = sub.add_parser("info", help="print a columnar trace summary")
    info.add_argument("path")

    args = parser.parse_args(argv)

    if args.command == "info":
        reader = open_trace(args.path)
        print(
            f"{reader.name}: {reader.length} requests, "
            f"{reader.num_pages} pages, {reader.num_users} tenants, "
            f"dtype={reader.dtype}, "
            f"{reader.nbytes_per_request} bytes/request, "
            f"{reader.bytes_on_disk()} bytes on disk"
        )
        labels = reader.page_labels()
        print(f"labels: {'stored' if labels is not None else 'none'}")
        return 0

    if is_columnar(args.source):
        reader = open_trace(args.source)
        if args.limit is not None:
            reader = reader.head(args.limit)
        save_csv(
            reader,
            args.dest,
            page_labels=reader.page_labels(),
            tenant_labels=reader.tenant_labels(),
        )
        print(f"wrote {reader.length} requests -> {args.dest}")
        return 0

    if args.kv_log:
        reader = convert_kv_log(
            args.source,
            args.dest,
            key_col=args.key_col,
            tenant_col=args.tenant_col,
            delimiter=args.delimiter,
            name=args.name,
            dtype=args.dtype,
            segment_rows=args.segment_rows,
        )
    else:
        reader = convert_csv(
            args.source,
            args.dest,
            name=args.name,
            dtype=args.dtype,
            segment_rows=args.segment_rows,
            store_labels=not args.no_labels,
        )
    print(
        f"wrote {reader.length} requests "
        f"({reader.num_pages} pages, {reader.num_users} tenants, "
        f"{reader.nbytes_per_request} B/request) -> {args.dest}"
    )
    return 0


__all__ = ["LoadedTrace", "load_csv", "save_csv", "round_trip", "main"]


if __name__ == "__main__":
    sys.exit(main())
