"""CSV import/export for request traces.

External traces (production buffer-pool logs, other simulators) rarely
use dense integer ids.  :func:`load_csv` accepts arbitrary page/tenant
labels, densifies them, and returns the mapping so results can be
reported in the original vocabulary; :func:`save_csv` writes the
symmetric format.

Format: a header line then one request per row::

    page,tenant
    tbl1:4711,customer-a
    tbl1:4712,customer-a
    idx9:17,customer-b

(An optional leading ``t`` column with the request index is accepted on
load — rows are used in file order regardless — and written on save.)

Paths ending in ``.gz`` are read and written gzip-compressed
transparently, so large replay traces (the serving subsystem's
:func:`repro.serve.client.load_trace_file`) ship compressed.
"""

from __future__ import annotations

import csv
import gzip
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Union

import numpy as np

from repro.sim.trace import Trace


def _open_text(path: str, mode: str) -> TextIO:
    """Open *path* for text I/O, gzip-compressed when it ends ``.gz``."""
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


@dataclass
class LoadedTrace:
    """A densified trace plus label mappings back to the source file."""

    trace: Trace
    page_labels: List[str]
    tenant_labels: List[str]

    def page_id(self, label: str) -> int:
        return self.page_labels.index(label)

    def tenant_id(self, label: str) -> int:
        return self.tenant_labels.index(label)


def load_csv(source: Union[str, TextIO], name: str = "csv-trace") -> LoadedTrace:
    """Read a ``page,tenant`` CSV into a dense :class:`Trace`.

    Pages and tenants are densified in first-appearance order.  A page
    appearing under two different tenants is an error (the model's
    ownership map is per page).  A path ending ``.gz`` is decompressed
    transparently.
    """
    close = False
    if isinstance(source, str):
        fh: TextIO = _open_text(source, "r")
        close = True
    else:
        fh = source
    try:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not {"page", "tenant"} <= set(
            reader.fieldnames
        ):
            raise ValueError(
                f"CSV must have 'page' and 'tenant' columns, got {reader.fieldnames}"
            )
        page_ids: Dict[str, int] = {}
        tenant_ids: Dict[str, int] = {}
        page_owner: Dict[int, int] = {}
        requests: List[int] = []
        for lineno, row in enumerate(reader, start=2):
            page_label = row["page"]
            tenant_label = row["tenant"]
            if page_label is None or tenant_label is None:
                raise ValueError(f"line {lineno}: missing page/tenant")
            tid = tenant_ids.setdefault(tenant_label, len(tenant_ids))
            pid = page_ids.setdefault(page_label, len(page_ids))
            prev = page_owner.setdefault(pid, tid)
            if prev != tid:
                raise ValueError(
                    f"line {lineno}: page {page_label!r} owned by two tenants"
                )
            requests.append(pid)
        if not requests:
            raise ValueError("CSV contains no requests")
        owners = np.empty(len(page_ids), dtype=np.int64)
        for pid, tid in page_owner.items():
            owners[pid] = tid
        trace = Trace(np.asarray(requests, dtype=np.int64), owners, name=name)
        return LoadedTrace(
            trace=trace,
            page_labels=list(page_ids),
            tenant_labels=list(tenant_ids),
        )
    finally:
        if close:
            fh.close()


def save_csv(
    trace: Trace,
    target: Union[str, TextIO],
    page_labels: Optional[Sequence[str]] = None,
    tenant_labels: Optional[Sequence[str]] = None,
) -> None:
    """Write a trace as ``t,page,tenant`` rows.

    Labels default to ``p<id>`` / ``tenant<id>``; pass the mappings from
    :class:`LoadedTrace` to round-trip external vocabulary.  A path
    ending ``.gz`` is gzip-compressed transparently.
    """
    if page_labels is not None and len(page_labels) < trace.num_pages:
        raise ValueError(f"need {trace.num_pages} page labels")
    if tenant_labels is not None and len(tenant_labels) < trace.num_users:
        raise ValueError(f"need {trace.num_users} tenant labels")
    close = False
    if isinstance(target, str):
        fh: TextIO = _open_text(target, "w")
        close = True
    else:
        fh = target
    try:
        writer = csv.writer(fh)
        writer.writerow(["t", "page", "tenant"])
        for t in range(trace.length):
            pid = int(trace.requests[t])
            tid = int(trace.owners[pid])
            page = page_labels[pid] if page_labels is not None else f"p{pid}"
            tenant = (
                tenant_labels[tid] if tenant_labels is not None else f"tenant{tid}"
            )
            writer.writerow([t, page, tenant])
    finally:
        if close:
            fh.close()


def round_trip(trace: Trace) -> Trace:
    """save→load round trip (testing / format sanity).

    Loading densifies ids in first-appearance order, so the result is
    the original trace *up to relabelling*; it is bit-identical exactly
    when pages first appear in increasing id order and ownership blocks
    follow suit.  Access structure (hit/miss behaviour under any
    policy) is always preserved.
    """
    buf = io.StringIO()
    save_csv(trace, buf)
    buf.seek(0)
    return load_csv(buf, name=trace.name).trace


__all__ = ["LoadedTrace", "load_csv", "save_csv", "round_trip"]
