"""Metrics over simulation outcomes.

Cost accounting (:func:`total_cost`, :func:`per_user_costs`), windowed
miss accounting for SLA-style objectives (:func:`windowed_miss_counts`,
:func:`windowed_cost`), and miss-ratio curves used by the workload
characterisation utilities.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.sim.engine import SimResult
from repro.util.validation import check_positive_int


def per_user_costs(result: SimResult, costs: Sequence[CostFunction]) -> np.ndarray:
    """``out[i] = f_i(a_i)`` for one run."""
    n = result.user_misses.size
    if len(costs) < n:
        raise ValueError(f"need {n} cost functions, got {len(costs)}")
    return np.array(
        [float(f.value(int(m))) for f, m in zip(costs, result.user_misses)],
        dtype=float,
    )


def total_cost(result: SimResult, costs: Sequence[CostFunction]) -> float:
    """The paper's objective :math:`\\sum_i f_i(a_i)` for one run."""
    return float(per_user_costs(result, costs).sum())


def cost_of_misses(user_misses: np.ndarray, costs: Sequence[CostFunction]) -> float:
    """Objective value of an arbitrary per-user miss vector."""
    misses = np.asarray(user_misses)
    if len(costs) < misses.size:
        raise ValueError(f"need {misses.size} cost functions, got {len(costs)}")
    return float(sum(f.value(int(m)) for f, m in zip(costs, misses)))


def windowed_miss_counts(result: SimResult, window: int) -> np.ndarray:
    """Per-user miss counts per time window.

    Requires the run to have been recorded with ``record_curve=True``.
    Returns shape ``(ceil(T / window), n)`` where row ``w`` holds each
    user's misses during requests ``[w*window, (w+1)*window)``.

    This supports the paper's motivating SLA shape — "up to ~M misses
    in a time window of T" — where the provider refunds per window.
    """
    window = check_positive_int(window, "window")
    if result.miss_curve is None:
        raise ValueError("run must be simulated with record_curve=True")
    curve = result.miss_curve
    T = curve.shape[0] - 1
    edges = list(range(0, T + 1, window))
    if edges[-1] != T:
        edges.append(T)
    edges_arr = np.asarray(edges, dtype=np.int64)
    return (curve[edges_arr[1:]] - curve[edges_arr[:-1]]).astype(np.int64)


def windowed_cost(
    result: SimResult, costs: Sequence[CostFunction], window: int
) -> float:
    """:math:`\\sum_w \\sum_i f_i(\\text{misses}_i\\text{ in window } w)`.

    Applying a convex :math:`f_i` per window and summing is itself a
    legitimate objective for the paper's algorithm (it is convex in
    each window's count); this helper evaluates policies under it.
    """
    per_window = windowed_miss_counts(result, window)
    n = per_window.shape[1]
    if len(costs) < n:
        raise ValueError(f"need {n} cost functions, got {len(costs)}")
    total = 0.0
    for row in per_window:
        total += sum(float(f.value(int(m))) for f, m in zip(costs, row))
    return total


def miss_ratio_curve(result: SimResult) -> np.ndarray:
    """Cumulative miss ratio after each request; shape ``(T,)``.

    Requires ``record_curve=True``.
    """
    if result.miss_curve is None:
        raise ValueError("run must be simulated with record_curve=True")
    cum = result.miss_curve.sum(axis=1)[1:]
    t = np.arange(1, cum.size + 1, dtype=float)
    return cum / t


def cost_curve(result: SimResult, costs: Sequence[CostFunction]) -> np.ndarray:
    """Anytime objective: ``out[t] = Σ_i f_i(m_i(t))`` after each request.

    Requires ``record_curve=True``.  Useful for plotting how the convex
    objective accumulates over time (bursts show up as super-linear
    segments).
    """
    if result.miss_curve is None:
        raise ValueError("run must be simulated with record_curve=True")
    curve = result.miss_curve[1:]
    n = curve.shape[1]
    if len(costs) < n:
        raise ValueError(f"need {n} cost functions, got {len(costs)}")
    total = np.zeros(curve.shape[0], dtype=float)
    for i in range(n):
        total += np.asarray(costs[i].value(curve[:, i].astype(float)), dtype=float)
    return total


def fairness_index(result: SimResult) -> float:
    """Jain's fairness index of per-user miss counts (1 = equal).

    Not in the paper, but a standard lens for shared-resource
    allocation; reported by the SLA comparison experiment.
    """
    m = result.user_misses.astype(float)
    if m.size == 0 or m.sum() == 0:
        return 1.0
    return float(m.sum() ** 2 / (m.size * (m**2).sum()))


__all__ = [
    "per_user_costs",
    "total_cost",
    "cost_of_misses",
    "windowed_miss_counts",
    "windowed_cost",
    "miss_ratio_curve",
    "fairness_index",
]
