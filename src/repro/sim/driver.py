"""Parallel multi-run simulation driver.

Experiments rarely run one simulation: E5/E9/E11 all fan a grid of
(policy, cache size, trace) cells and compare rows.  ``simulate_many``
enumerates that cartesian product, derives an independent per-cell seed
with the same :func:`repro.util.rng.derive_seed` convention as
:func:`repro.analysis.sweep.run_sweep` (cells numbered in product
order), and optionally spreads cells over a ``ProcessPoolExecutor``.
Results are identical whether run serially or in parallel, and the
returned list is always in product order.

Policies are given as registry names (``"lru"``) or zero-argument
factories; names keep cells picklable for the process pool and let the
driver pass the derived seed to stochastic policies (any factory whose
constructor accepts an ``rng`` keyword).
"""

from __future__ import annotations

import inspect
import itertools
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.obs import Observability, default_observability
from repro.sim.engine import SimResult, simulate
from repro.sim.policy import EvictionPolicy
from repro.sim.trace import Trace
from repro.util.rng import derive_seed
from repro.util.validation import check_positive_int

#: A registry name or a zero-argument policy factory (class or callable).
PolicySpec = Union[str, Callable[..., EvictionPolicy]]

#: ``costs`` argument: one list for every trace, or a per-trace builder.
CostsSpec = Union[None, Sequence[object], Callable[[Trace], Sequence[object]]]


@dataclass(frozen=True)
class GridRun:
    """One completed cell of a :func:`simulate_many` grid."""

    policy: str
    k: int
    trace_index: int
    seed: int
    elapsed: float
    result: SimResult


def _resolve_factory(spec: PolicySpec) -> Tuple[str, Callable[..., EvictionPolicy]]:
    """``(display name, factory)`` for a policy spec."""
    if isinstance(spec, str):
        # Imported lazily: repro.policies itself imports repro.sim.
        from repro.policies import POLICY_REGISTRY

        try:
            return spec, POLICY_REGISTRY[spec]
        except KeyError:
            raise KeyError(
                f"unknown policy {spec!r}; known: {sorted(POLICY_REGISTRY)}"
            ) from None
    name = getattr(spec, "name", None)
    if not isinstance(name, str):
        name = getattr(spec, "__name__", repr(spec))
    return name, spec


def _build_policy(factory: Callable[..., EvictionPolicy], seed: int) -> EvictionPolicy:
    """Instantiate, passing the cell seed to stochastic policies."""
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        params = {}
    if "rng" in params:
        return factory(rng=seed)
    return factory()


def resolve_trace(trace):
    """Materialize a trace spec.

    Strings are on-disk traces — a columnar directory opens as a
    streaming :class:`~repro.sim.colstore.TraceReader` (the trace never
    rides a pickle and never materializes), anything else loads as a
    ``page,tenant`` CSV.  ``Trace``/reader objects pass through.  Grid
    drivers call this *inside the worker process* so path cells ship a
    string instead of the requests; it is public so experiments and the
    network CLI resolve specs the same way.
    """
    if isinstance(trace, str):
        from repro.sim.colstore import is_columnar, open_trace

        if is_columnar(trace):
            return open_trace(trace)
        from repro.sim.trace_io import load_csv

        return load_csv(trace).trace
    return trace


#: Backwards-compatible private alias (pre-PR7 name).
_resolve_trace = resolve_trace


def costs_per_trace(costs: CostsSpec, traces: Sequence) -> List[Optional[Sequence[object]]]:
    """Evaluate a ``costs`` spec against every trace in a grid.

    ``None`` and plain sequences broadcast to every trace.  A callable
    is evaluated once per trace in the parent process; *path* entries
    are resolved first (columnar directories open as header-only
    streaming readers — cheap), so the callable always sees an object
    with ``num_users`` rather than a raw string.
    """
    if not callable(costs):
        return [costs for _ in traces]
    return [costs(resolve_trace(trace)) for trace in traces]


def _run_cell(job: Tuple) -> Tuple[float, SimResult]:
    """Top-level worker so process pools can unpickle the call."""
    spec, k, trace, costs, seed, engine, record_events, record_curve = job
    trace = resolve_trace(trace)
    _name, factory = _resolve_factory(spec)
    policy = _build_policy(factory, seed)
    start = time.perf_counter()
    result = simulate(
        trace,
        policy,
        k,
        costs=costs,
        record_events=record_events,
        record_curve=record_curve,
        engine=engine,
    )
    return time.perf_counter() - start, result


def simulate_many(
    policies: Sequence[PolicySpec],
    ks: Sequence[int],
    traces: Sequence[Union[Trace, str]],
    *,
    costs: CostsSpec = None,
    engine: str = "auto",
    base_seed: int = 0,
    record_events: bool = False,
    record_curve: bool = False,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    obs: Optional["Observability"] = None,
) -> List[GridRun]:
    """Run every (policy, k, trace) combination, optionally in parallel.

    Parameters
    ----------
    policies:
        Registry names (``"lru"``) and/or zero-argument factories.
    ks:
        Cache capacities.
    traces:
        Traces; each cell records the index of the trace it ran.  An
        entry may also be a *path string* — resolved inside the worker
        process (columnar directories stream via
        :class:`~repro.sim.colstore.TraceReader`; anything else loads
        as CSV), so parallel grids over huge on-disk traces ship a
        path per cell instead of pickling the requests.
    costs:
        ``None``, one cost list shared by every trace, or a callable
        ``trace -> costs`` evaluated once per trace in the parent
        process via :func:`costs_per_trace` (path entries are resolved
        to header-only readers first, so the callable sees
        ``num_users``).
    engine:
        Forwarded to :func:`repro.sim.engine.simulate`.
    base_seed:
        Root of the per-cell seed derivation.  Cells are numbered in
        ``itertools.product(policies, ks, traces)`` order and cell *i*
        gets ``derive_seed(base_seed, i)`` — the
        :func:`~repro.analysis.sweep.run_sweep` convention.  The seed
        reaches stochastic policies (constructors accepting ``rng``)
        and is recorded on every :class:`GridRun` for logging.
    workers:
        ``None`` (default) runs serially.  An integer uses a
        ``ProcessPoolExecutor`` with that many workers; results are
        bit-identical to the serial run and come back in the same
        order.
    chunksize:
        Cells pickled per pool task (parallel runs only).  Defaults to
        ``max(1, cells // (8 * workers))`` so large grids stop paying
        one pickle round-trip per cell while keeping ~8 tasks per
        worker for load balancing.
    obs:
        Telemetry bundle for the *grid* level: one ``sim.grid`` span
        around the whole product, a ``sim.cell`` event per completed
        cell, and a ``sim_grid_cells_total`` counter.  Per-run engine
        telemetry stays with the engine's own default bundle (worker
        processes do not share this one).

    Returns
    -------
    list[GridRun]
        One entry per cell, in product order.
    """
    if not policies:
        raise ValueError("policies must be non-empty")
    if not ks:
        raise ValueError("ks must be non-empty")
    if not traces:
        raise ValueError("traces must be non-empty")

    per_trace_costs = costs_per_trace(costs, traces)

    jobs: List[Tuple] = []
    meta: List[Tuple[str, int, int, int]] = []
    for cell_index, (spec, k, trace_index) in enumerate(
        itertools.product(policies, ks, range(len(traces)))
    ):
        name, _factory = _resolve_factory(spec)
        seed = derive_seed(base_seed, cell_index)
        meta.append((name, int(k), trace_index, seed))
        jobs.append(
            (
                spec,
                int(k),
                traces[trace_index],
                per_trace_costs[trace_index],
                seed,
                engine,
                record_events,
                record_curve,
            )
        )

    if obs is None:
        obs = default_observability()
    with obs.tracer.span(
        "sim.grid",
        cells=len(jobs),
        policies=len(policies),
        ks=len(ks),
        traces=len(traces),
        workers=workers or 0,
    ):
        if workers is None:
            outputs = [_run_cell(job) for job in jobs]
        else:
            workers = check_positive_int(workers, "workers")
            if chunksize is None:
                chunksize = max(1, len(jobs) // (8 * workers))
            else:
                chunksize = check_positive_int(chunksize, "chunksize")
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=workers) as pool:
                outputs = list(
                    pool.map(_run_cell, jobs, chunksize=chunksize)
                )

        if obs.tracer.enabled:
            for (name, k, trace_index, _seed), (elapsed, result) in zip(
                meta, outputs
            ):
                obs.tracer.event(
                    "sim.cell",
                    policy=name,
                    k=k,
                    trace_index=trace_index,
                    elapsed=elapsed,
                    misses=result.misses,
                )
    if obs.registry.enabled:
        obs.registry.counter(
            "sim_grid_cells_total", "Grid cells completed by simulate_many"
        ).inc(len(jobs))

    return [
        GridRun(
            policy=name,
            k=k,
            trace_index=trace_index,
            seed=seed,
            elapsed=elapsed,
            result=result,
        )
        for (name, k, trace_index, seed), (elapsed, result) in zip(meta, outputs)
    ]


__all__ = [
    "GridRun",
    "PolicySpec",
    "costs_per_trace",
    "resolve_trace",
    "simulate_many",
]
