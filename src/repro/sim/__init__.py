"""Multi-tenant cache simulator.

:mod:`repro.sim.trace` — request sequences and ownership maps;
:mod:`repro.sim.policy` — the eviction-policy protocol;
:mod:`repro.sim.engine` — the simulation loop (fast + reference engines);
:mod:`repro.sim.driver` — the parallel multi-run grid driver;
:mod:`repro.sim.colstore` — out-of-core columnar traces + converters;
:mod:`repro.sim.metrics` — cost / windowed / fairness metrics.
"""

from repro.sim.colstore import (
    ColumnarTraceWriter,
    SpillableIdMap,
    TraceReader,
    convert_csv,
    convert_kv_log,
    is_columnar,
    open_trace,
    write_columnar,
)
from repro.sim.driver import GridRun, simulate_many
from repro.sim.engine import ENGINES, EvictionEvent, SimResult, replay_evictions, simulate
from repro.sim.metrics import (
    cost_curve,
    cost_of_misses,
    fairness_index,
    miss_ratio_curve,
    per_user_costs,
    total_cost,
    windowed_cost,
    windowed_miss_counts,
)
from repro.sim.policy import EvictionPolicy, SimContext
from repro.sim.trace import Trace, make_trace, single_user_trace
from repro.sim.trace_io import LoadedTrace, load_csv, round_trip, save_csv

__all__ = [
    "ENGINES",
    "EvictionEvent",
    "SimResult",
    "simulate",
    "replay_evictions",
    "GridRun",
    "simulate_many",
    "EvictionPolicy",
    "SimContext",
    "Trace",
    "make_trace",
    "single_user_trace",
    "LoadedTrace",
    "load_csv",
    "save_csv",
    "round_trip",
    "ColumnarTraceWriter",
    "SpillableIdMap",
    "TraceReader",
    "convert_csv",
    "convert_kv_log",
    "is_columnar",
    "open_trace",
    "write_columnar",
    "total_cost",
    "per_user_costs",
    "cost_of_misses",
    "windowed_miss_counts",
    "windowed_cost",
    "miss_ratio_curve",
    "cost_curve",
    "fairness_index",
]
