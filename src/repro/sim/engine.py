"""The multi-tenant cache simulation engine.

The engine enforces the paper's mechanics exactly: at each time ``t``
the requested page :math:`p_t` must end up resident; on a miss with a
full cache exactly one resident page is evicted.  Policies only choose
victims (see :mod:`repro.sim.policy`), so every algorithm — the paper's
and all baselines — is measured under identical rules.

Misses are counted on fetches.  The paper charges evictions instead but
notes the two are equal under its end-of-sequence cache-flush
convention; fetch-counting avoids the dummy user entirely and matches
the quantity :math:`a_i(\\sigma)` in Theorem 1.1.

Two interchangeable implementations share that contract:

* ``engine="reference"`` — the original per-request loop (a ``set``
  membership test and an ``on_hit`` call per request).  It is the
  ground truth for the equivalence suite.
* ``engine="fast"`` (the ``"auto"`` default) — exploits the fact that
  residency only changes on misses: between two misses the engine scans
  forward for the next non-resident request against a bool residency
  array (a Python-list walk for short runs, escalating to doubling
  vectorized chunks ``resident[requests[t:t+C]]`` once a run proves
  long) and hands the whole hit run to the policy through
  :meth:`~repro.sim.policy.EvictionPolicy.on_hit_batch`.  Policies with
  ``ignores_hits`` skip delivery entirely.  Miss handling is identical
  to the reference loop, so the two engines produce bit-identical
  :class:`SimResult`\\ s (enforced for every registered policy by
  ``tests/test_engine_fast.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import repeat
from typing import List, Optional, Sequence

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.obs import Observability, default_observability
from repro.obs.flight import FlightRecorder, has_budget_probe, record_miss
from repro.sim.policy import EvictionPolicy, SimContext
from repro.sim.trace import Trace
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class EvictionEvent:
    """One eviction: at time *t*, *victim* was removed to admit *requested*."""

    t: int
    requested: int
    victim: int


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    policy_name, trace_name, k:
        Identification of the run.
    hits, misses:
        Totals over the whole trace.
    user_misses:
        ``user_misses[i]`` = the paper's :math:`a_i(\\sigma)` (or
        :math:`b_i` for offline policies).
    final_cache:
        Resident pages at the end (sorted).
    events:
        Eviction log, present only when recorded.
    miss_curve:
        Shape ``(T+1, n)`` array with ``miss_curve[t, i]`` = user *i*'s
        misses among the first ``t`` requests; present only when
        recorded (the paper's :math:`m(i,t)` for the run's policy).
    """

    policy_name: str
    trace_name: str
    k: int
    hits: int
    misses: int
    user_misses: np.ndarray
    final_cache: List[int]
    events: Optional[List[EvictionEvent]] = None
    miss_curve: Optional[np.ndarray] = None

    @property
    def total_requests(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.total_requests
        return self.misses / total if total else 0.0

    def cost(self, costs: Sequence[CostFunction]) -> float:
        """Total cost :math:`\\sum_i f_i(a_i)` under *costs*."""
        if len(costs) < self.user_misses.size:
            raise ValueError(
                f"need {self.user_misses.size} cost functions, got {len(costs)}"
            )
        return float(
            sum(f.value(int(m)) for f, m in zip(costs, self.user_misses))
        )

    def __repr__(self) -> str:
        return (
            f"SimResult(policy={self.policy_name!r}, trace={self.trace_name!r}, "
            f"k={self.k}, misses={self.misses}/{self.total_requests})"
        )


#: Engine selector values accepted by :func:`simulate`.
ENGINES = ("auto", "fast", "reference")

#: Consecutive hits walked per run through the Python-list probe before
#: the scanner escalates to vectorized chunks (a list probe costs ~60ns,
#: a vectorized probe has ~2µs call overhead but ~2ns/element after).
_WALK_LIMIT = 32

#: First vectorized chunk size; doubles up to the cap while a run lasts.
_CHUNK_START = 256
_CHUNK_CAP = 16_384


def simulate(
    trace: Trace,
    policy: EvictionPolicy,
    k: int,
    costs: Optional[Sequence[CostFunction]] = None,
    record_events: bool = False,
    record_curve: bool = False,
    validate: bool = True,
    engine: str = "auto",
    obs: Optional["Observability"] = None,
    flight: Optional[FlightRecorder] = None,
) -> SimResult:
    """Run *policy* over *trace* with a cache of size *k*.

    Parameters
    ----------
    trace:
        The request sequence and ownership map — an in-RAM
        :class:`~repro.sim.trace.Trace` or a streaming
        :class:`~repro.sim.colstore.TraceReader` (the out-of-core
        path: batches are consumed without materializing the request
        column; results are bit-identical to the in-RAM engines,
        enforced by ``tests/test_colstore.py`` for every registered
        policy).  Readers support the fast engine only and cannot
        record the miss curve or run offline (``requires_future``)
        policies, since both need the whole trace resident.
    policy:
        Any :class:`~repro.sim.policy.EvictionPolicy`.  It is ``reset``
        before the run, so instances may be reused across calls.
    k:
        Cache capacity, ``k >= 1``.
    costs:
        Per-user cost functions; required when
        ``policy.requires_costs`` and optional otherwise (they are only
        stored in the context, never used by the engine).
    record_events:
        Keep the eviction log (memory ~ number of misses).
    record_curve:
        Keep the full per-user miss curve ``(T+1, n)``.
    validate:
        Check the victim returned by the policy is resident and not the
        requested page.  Disable only in throughput benchmarks.
    engine:
        ``"auto"`` (= ``"fast"``, the hit-run scanning engine) or
        ``"reference"`` (the original per-request loop, kept as ground
        truth).  Both produce bit-identical results.
    obs:
        Telemetry bundle; defaults to the process-wide
        :func:`~repro.obs.default_observability`.  When both metrics
        and tracing are off (the default), the only cost is one boolean
        check per *run* — the request loop itself is never touched, so
        results and performance are unchanged.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder` receiving
        one structured decision event per request (hit/miss, victim,
        budget before/after for budget policies); defaults to
        ``obs.flight``.  When ``None`` (the default bundle), the hot
        loops carry only one ``is None`` check per miss/hit run.

    Returns
    -------
    SimResult
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    k = check_positive_int(k, "k")
    streaming = not isinstance(trace, Trace)
    if streaming:
        if not hasattr(trace, "batches"):
            raise TypeError(
                f"trace must be a Trace or a TraceReader, got {type(trace).__name__}"
            )
        if engine == "reference":
            raise ValueError(
                "streaming simulate supports the fast engine only "
                "(materialize() the reader for engine='reference')"
            )
        if record_curve:
            raise ValueError(
                "record_curve needs the whole trace resident; "
                "materialize() the reader first"
            )
        if policy.requires_future:
            raise ValueError(
                f"{policy.name} is offline (requires_future) and needs the "
                f"materialized trace"
            )
    num_users = trace.num_users
    if policy.requires_costs:
        if costs is None:
            raise ValueError(f"{policy.name} requires cost functions")
    if costs is not None and len(costs) < num_users:
        raise ValueError(f"need {num_users} cost functions, got {len(costs)}")

    ctx = SimContext(
        k=k,
        owners=np.asarray(trace.owners),
        num_users=num_users,
        costs=costs,
        trace=trace if policy.requires_future else None,
        num_pages=trace.num_pages,
        horizon=trace.length,
    )
    if obs is None:
        obs = default_observability()
    if flight is None:
        flight = obs.flight
    if flight is not None:
        flight.note_config(
            policy=policy.name,
            k=k,
            num_shards=1,
            source=f"sim:{engine}",
            trace=trace.name,
        )
    if streaming:
        run = _simulate_stream
    elif engine == "reference":
        run = _simulate_reference
    else:
        run = _simulate_fast
    if not (obs.tracer.enabled or obs.registry.enabled):
        policy.reset(ctx)
        return run(trace, policy, k, record_events, record_curve, validate, flight)

    tracer = obs.tracer
    with tracer.span("sim.setup", policy=policy.name, trace=trace.name):
        policy.reset(ctx)
    with tracer.span(
        "sim.run",
        policy=policy.name,
        trace=trace.name,
        k=k,
        engine=engine,
        T=trace.length,
    ) as span:
        result = run(trace, policy, k, record_events, record_curve, validate, flight)
        span.set(hits=result.hits, misses=result.misses)
    reg = obs.registry
    reg.counter("sim_runs_total", "Simulation runs completed").inc()
    reg.counter("sim_requests_total", "Requests simulated").inc(
        result.total_requests
    )
    reg.counter("sim_hits_total", "Cache hits simulated").inc(result.hits)
    reg.counter("sim_misses_total", "Cache misses simulated").inc(result.misses)
    return result


def _simulate_reference(
    trace: Trace,
    policy: EvictionPolicy,
    k: int,
    record_events: bool,
    record_curve: bool,
    validate: bool,
    flight: Optional[FlightRecorder] = None,
) -> SimResult:
    """The original per-request loop — ground truth for equivalence."""
    num_users = trace.num_users
    cache: set[int] = set()
    hits = 0
    user_misses = np.zeros(max(num_users, 1), dtype=np.int64)
    events: Optional[List[EvictionEvent]] = [] if record_events else None
    curve: Optional[np.ndarray] = (
        np.zeros((trace.length + 1, max(num_users, 1)), dtype=np.int64)
        if record_curve
        else None
    )

    fl = flight.append if flight is not None else None
    probe = flight is not None and has_budget_probe(policy)
    owners_l = trace.owners.tolist() if flight is not None else None
    if flight is not None:
        flight.bind(owners_l)

    owners = trace.owners
    requests = trace.requests
    for t in range(requests.size):
        page = int(requests[t])
        if page in cache:
            hits += 1
            policy.on_hit(page, t)
            if fl is not None:
                fl((t, page, 0))
        else:
            user_misses[owners[page]] += 1
            if len(cache) < k:
                cache.add(page)
                policy.on_insert(page, t)
                if fl is not None:
                    record_miss(
                        fl, policy, probe, owners_l[page], t, page, 0, None, None
                    )
            else:
                victim = policy.choose_victim(page, t)
                if validate:
                    if victim not in cache:
                        raise RuntimeError(
                            f"{policy.name} evicted non-resident page {victim} at t={t}"
                        )
                    if victim == page:
                        raise RuntimeError(
                            f"{policy.name} evicted the requested page {page} at t={t}"
                        )
                b_before = (
                    float(policy.budget_of(victim))
                    if fl is not None and probe
                    else None
                )
                cache.remove(victim)
                policy.on_evict(victim, t)
                cache.add(page)
                policy.on_insert(page, t)
                if events is not None:
                    events.append(EvictionEvent(t=t, requested=page, victim=victim))
                if fl is not None:
                    record_miss(
                        fl, policy, probe, owners_l[page], t, page, 0, victim, b_before
                    )
        if curve is not None:
            curve[t + 1] = user_misses

    return SimResult(
        policy_name=policy.name,
        trace_name=trace.name,
        k=k,
        hits=hits,
        misses=int(user_misses.sum()),
        user_misses=user_misses,
        final_cache=sorted(cache),
        events=events,
        miss_curve=curve,
    )


def _simulate_fast(
    trace: Trace,
    policy: EvictionPolicy,
    k: int,
    record_events: bool,
    record_curve: bool,
    validate: bool,
    flight: Optional[FlightRecorder] = None,
) -> SimResult:
    """Hit-run scanning engine.

    Residency lives in a bool array indexed by page (no hashing) plus a
    mirrored Python list (a plain-list probe beats both numpy scalar
    indexing and set hashing for single lookups).  Because residency
    only changes on misses, the next miss is found by scanning forward
    through constant residency: a short Python walk first, then
    vectorized chunks of doubling size once the run proves long.  The
    hits in between reach the policy as one ``on_hit_batch`` call — or
    not at all for ``ignores_hits`` policies.
    """
    num_users = trace.num_users
    num_pages = trace.num_pages
    requests = trace.requests
    owners = trace.owners
    req_list = requests.tolist()
    T = len(req_list)

    res_arr = np.zeros(max(num_pages, 1), dtype=bool)
    res_list = [False] * max(num_pages, 1)
    size = 0
    hits = 0
    user_misses = np.zeros(max(num_users, 1), dtype=np.int64)
    events: Optional[List[EvictionEvent]] = [] if record_events else None
    curve: Optional[np.ndarray] = (
        np.zeros((T + 1, max(num_users, 1)), dtype=np.int64)
        if record_curve
        else None
    )

    deliver_hits = not policy.ignores_hits
    on_hit = policy.on_hit
    on_hit_batch = policy.on_hit_batch
    on_insert = policy.on_insert

    fl = flight.append if flight is not None else None
    fl_extend = flight.extend if flight is not None else None
    fl_zero = repeat(0)
    probe = flight is not None and has_budget_probe(policy)
    owners_l = trace.owners.tolist() if flight is not None else None
    if flight is not None:
        flight.bind(owners_l)

    t = 0
    vector_mode = False  # sticky: the previous run was long
    while t < T:
        # ---- scan for the next miss; [t, nm) is a maximal hit run ----
        nm = t
        escalate = vector_mode
        if not escalate:
            walk_end = t + _WALK_LIMIT
            if walk_end > T:
                walk_end = T
            while nm < walk_end and res_list[req_list[nm]]:
                nm += 1
            escalate = nm == walk_end and nm < T
        if escalate:
            # Long run: vectorized chunk scanning with doubling chunks.
            # argmin of a bool block is its first False (the miss); a
            # True at that position means the whole block hit.
            chunk = _CHUNK_START
            while nm < T:
                block = res_arr[requests[nm : nm + chunk]]
                j = int(block.argmin())
                if block[j]:
                    nm += block.size
                    if chunk < _CHUNK_CAP:
                        chunk <<= 1
                else:
                    nm += j
                    break

        run_len = nm - t
        vector_mode = run_len >= _WALK_LIMIT
        if run_len:
            hits += run_len
            if deliver_hits:
                if run_len == 1:
                    on_hit(req_list[t], t)
                else:
                    on_hit_batch(req_list[t:nm], t)
            if fl_extend is not None:
                # Bulk-append the whole hit run; zip builds the compact
                # (t, page, shard) tuples in C.
                fl_extend(zip(range(t, nm), req_list[t:nm], fl_zero))
            if curve is not None:
                curve[t + 1 : nm + 1] = user_misses
        if nm >= T:
            break

        # ---- miss at nm: identical mechanics to the reference loop ----
        page = req_list[nm]
        user_misses[owners[page]] += 1
        if size < k:
            res_arr[page] = True
            res_list[page] = True
            size += 1
            on_insert(page, nm)
            if fl is not None:
                record_miss(
                    fl, policy, probe, owners_l[page], nm, page, 0, None, None
                )
        else:
            victim = policy.choose_victim(page, nm)
            if validate:
                if victim < 0 or victim >= num_pages or not res_list[victim]:
                    raise RuntimeError(
                        f"{policy.name} evicted non-resident page {victim} at t={nm}"
                    )
                if victim == page:
                    raise RuntimeError(
                        f"{policy.name} evicted the requested page {page} at t={nm}"
                    )
            b_before = (
                float(policy.budget_of(victim))
                if fl is not None and probe
                else None
            )
            res_arr[victim] = False
            res_list[victim] = False
            policy.on_evict(victim, nm)
            res_arr[page] = True
            res_list[page] = True
            on_insert(page, nm)
            if events is not None:
                events.append(EvictionEvent(t=nm, requested=page, victim=victim))
            if fl is not None:
                record_miss(
                    fl, policy, probe, owners_l[page], nm, page, 0, victim, b_before
                )
        if curve is not None:
            curve[nm + 1] = user_misses
        t = nm + 1

    return SimResult(
        policy_name=policy.name,
        trace_name=trace.name,
        k=k,
        hits=hits,
        misses=int(user_misses.sum()),
        user_misses=user_misses,
        final_cache=np.flatnonzero(res_arr).tolist(),
        events=events,
        miss_curve=curve,
    )


def _simulate_stream(
    reader,
    policy: EvictionPolicy,
    k: int,
    record_events: bool,
    record_curve: bool,
    validate: bool,
    flight: Optional[FlightRecorder] = None,
) -> SimResult:
    """Out-of-core engine: the fast engine's hit-run scanner applied
    batch by batch to a :class:`~repro.sim.colstore.TraceReader`.

    Correctness leans on the ``on_hit_batch`` contract — a batch
    delivery must be observably identical to the per-hit loop
    (:mod:`repro.sim.policy`, enforced by the engine-equivalence
    suite) — so a maximal hit run split at a batch boundary reaches
    the policy as two calls with the same net effect, and the
    per-tenant counters are bit-identical to the in-RAM engines no
    matter the batch size.  Memory is bounded by one reader batch
    plus the residency arrays (page universe), never the trace length.
    """
    num_users = reader.num_users
    num_pages = reader.num_pages
    owners = np.asarray(reader.owners)

    res_arr = np.zeros(max(num_pages, 1), dtype=bool)
    res_list = [False] * max(num_pages, 1)
    size = 0
    hits = 0
    user_misses = np.zeros(max(num_users, 1), dtype=np.int64)
    events: Optional[List[EvictionEvent]] = [] if record_events else None

    deliver_hits = not policy.ignores_hits
    on_hit = policy.on_hit
    on_hit_batch = policy.on_hit_batch
    on_insert = policy.on_insert

    fl = flight.append if flight is not None else None
    fl_extend = flight.extend if flight is not None else None
    fl_zero = repeat(0)
    probe = flight is not None and has_budget_probe(policy)
    owners_l = owners.tolist() if flight is not None else None
    if flight is not None:
        flight.bind(owners_l)

    for base, chunk in reader.batches():
        req_list = chunk.tolist()
        B = len(req_list)
        t = 0
        vector_mode = False
        while t < B:
            # ---- scan for the next miss within this batch ----
            nm = t
            escalate = vector_mode
            if not escalate:
                walk_end = t + _WALK_LIMIT
                if walk_end > B:
                    walk_end = B
                while nm < walk_end and res_list[req_list[nm]]:
                    nm += 1
                escalate = nm == walk_end and nm < B
            if escalate:
                chunk_sz = _CHUNK_START
                while nm < B:
                    block = res_arr[chunk[nm : nm + chunk_sz]]
                    j = int(block.argmin())
                    if block[j]:
                        nm += block.size
                        if chunk_sz < _CHUNK_CAP:
                            chunk_sz <<= 1
                    else:
                        nm += j
                        break

            run_len = nm - t
            vector_mode = run_len >= _WALK_LIMIT
            if run_len:
                hits += run_len
                if deliver_hits:
                    if run_len == 1:
                        on_hit(req_list[t], base + t)
                    else:
                        on_hit_batch(req_list[t:nm], base + t)
                if fl_extend is not None:
                    fl_extend(
                        zip(range(base + t, base + nm), req_list[t:nm], fl_zero)
                    )
            if nm >= B:
                break

            # ---- miss: identical mechanics to the in-RAM engines ----
            page = req_list[nm]
            gt = base + nm
            user_misses[owners[page]] += 1
            if size < k:
                res_arr[page] = True
                res_list[page] = True
                size += 1
                on_insert(page, gt)
                if fl is not None:
                    record_miss(
                        fl, policy, probe, owners_l[page], gt, page, 0, None, None
                    )
            else:
                victim = policy.choose_victim(page, gt)
                if validate:
                    if victim < 0 or victim >= num_pages or not res_list[victim]:
                        raise RuntimeError(
                            f"{policy.name} evicted non-resident page {victim} "
                            f"at t={gt}"
                        )
                    if victim == page:
                        raise RuntimeError(
                            f"{policy.name} evicted the requested page {page} "
                            f"at t={gt}"
                        )
                b_before = (
                    float(policy.budget_of(victim))
                    if fl is not None and probe
                    else None
                )
                res_arr[victim] = False
                res_list[victim] = False
                policy.on_evict(victim, gt)
                res_arr[page] = True
                res_list[page] = True
                on_insert(page, gt)
                if events is not None:
                    events.append(
                        EvictionEvent(t=gt, requested=page, victim=victim)
                    )
                if fl is not None:
                    record_miss(
                        fl, policy, probe, owners_l[page], gt, page, 0,
                        victim, b_before,
                    )
            t = nm + 1

    return SimResult(
        policy_name=policy.name,
        trace_name=reader.name,
        k=k,
        hits=hits,
        misses=int(user_misses.sum()),
        user_misses=user_misses,
        final_cache=np.flatnonzero(res_arr).tolist(),
        events=events,
        miss_curve=None,
    )


def replay_evictions(trace: Trace, k: int, events: Sequence[EvictionEvent]) -> np.ndarray:
    """Recompute per-user miss counts implied by an eviction log.

    Used by tests to cross-check that a recorded eviction schedule is
    consistent with the engine's accounting: replays the trace applying
    the logged evictions verbatim and returns the per-user miss counts.
    Raises if the log is infeasible (evicting non-resident pages or
    missing an eviction when one was required).
    """
    k = check_positive_int(k, "k")
    by_time = {e.t: e for e in events}
    cache: set[int] = set()
    user_misses = np.zeros(max(trace.num_users, 1), dtype=np.int64)
    for t in range(trace.length):
        page = int(trace.requests[t])
        if page in cache:
            if t in by_time:
                raise ValueError(f"event at t={t} but request was a hit")
            continue
        user_misses[trace.owners[page]] += 1
        if len(cache) < k:
            if t in by_time:
                raise ValueError(f"event at t={t} but cache had space")
            cache.add(page)
        else:
            if t not in by_time:
                raise ValueError(f"miss with full cache at t={t} but no event")
            ev = by_time[t]
            if ev.requested != page:
                raise ValueError(f"event at t={t} records wrong page")
            if ev.victim not in cache:
                raise ValueError(f"event at t={t} evicts non-resident {ev.victim}")
            cache.remove(ev.victim)
            cache.add(page)
    return user_misses


__all__ = ["ENGINES", "EvictionEvent", "SimResult", "simulate", "replay_evictions"]
