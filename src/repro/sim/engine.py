"""The multi-tenant cache simulation engine.

The engine enforces the paper's mechanics exactly: at each time ``t``
the requested page :math:`p_t` must end up resident; on a miss with a
full cache exactly one resident page is evicted.  Policies only choose
victims (see :mod:`repro.sim.policy`), so every algorithm — the paper's
and all baselines — is measured under identical rules.

Misses are counted on fetches.  The paper charges evictions instead but
notes the two are equal under its end-of-sequence cache-flush
convention; fetch-counting avoids the dummy user entirely and matches
the quantity :math:`a_i(\\sigma)` in Theorem 1.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.sim.policy import EvictionPolicy, SimContext
from repro.sim.trace import Trace
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class EvictionEvent:
    """One eviction: at time *t*, *victim* was removed to admit *requested*."""

    t: int
    requested: int
    victim: int


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    policy_name, trace_name, k:
        Identification of the run.
    hits, misses:
        Totals over the whole trace.
    user_misses:
        ``user_misses[i]`` = the paper's :math:`a_i(\\sigma)` (or
        :math:`b_i` for offline policies).
    final_cache:
        Resident pages at the end (sorted).
    events:
        Eviction log, present only when recorded.
    miss_curve:
        Shape ``(T+1, n)`` array with ``miss_curve[t, i]`` = user *i*'s
        misses among the first ``t`` requests; present only when
        recorded (the paper's :math:`m(i,t)` for the run's policy).
    """

    policy_name: str
    trace_name: str
    k: int
    hits: int
    misses: int
    user_misses: np.ndarray
    final_cache: List[int]
    events: Optional[List[EvictionEvent]] = None
    miss_curve: Optional[np.ndarray] = None

    @property
    def total_requests(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.total_requests
        return self.misses / total if total else 0.0

    def cost(self, costs: Sequence[CostFunction]) -> float:
        """Total cost :math:`\\sum_i f_i(a_i)` under *costs*."""
        if len(costs) < self.user_misses.size:
            raise ValueError(
                f"need {self.user_misses.size} cost functions, got {len(costs)}"
            )
        return float(
            sum(f.value(int(m)) for f, m in zip(costs, self.user_misses))
        )

    def __repr__(self) -> str:
        return (
            f"SimResult(policy={self.policy_name!r}, trace={self.trace_name!r}, "
            f"k={self.k}, misses={self.misses}/{self.total_requests})"
        )


def simulate(
    trace: Trace,
    policy: EvictionPolicy,
    k: int,
    costs: Optional[Sequence[CostFunction]] = None,
    record_events: bool = False,
    record_curve: bool = False,
    validate: bool = True,
) -> SimResult:
    """Run *policy* over *trace* with a cache of size *k*.

    Parameters
    ----------
    trace:
        The request sequence and ownership map.
    policy:
        Any :class:`~repro.sim.policy.EvictionPolicy`.  It is ``reset``
        before the run, so instances may be reused across calls.
    k:
        Cache capacity, ``k >= 1``.
    costs:
        Per-user cost functions; required when
        ``policy.requires_costs`` and optional otherwise (they are only
        stored in the context, never used by the engine).
    record_events:
        Keep the eviction log (memory ~ number of misses).
    record_curve:
        Keep the full per-user miss curve ``(T+1, n)``.
    validate:
        Check the victim returned by the policy is resident and not the
        requested page.  Disable only in throughput benchmarks.

    Returns
    -------
    SimResult
    """
    k = check_positive_int(k, "k")
    num_users = trace.num_users
    if policy.requires_costs:
        if costs is None:
            raise ValueError(f"{policy.name} requires cost functions")
    if costs is not None and len(costs) < num_users:
        raise ValueError(f"need {num_users} cost functions, got {len(costs)}")

    ctx = SimContext(
        k=k,
        owners=trace.owners,
        num_users=num_users,
        costs=costs,
        trace=trace if policy.requires_future else None,
        num_pages=trace.num_pages,
        horizon=trace.length,
    )
    policy.reset(ctx)

    cache: set[int] = set()
    hits = 0
    user_misses = np.zeros(max(num_users, 1), dtype=np.int64)
    events: Optional[List[EvictionEvent]] = [] if record_events else None
    curve: Optional[np.ndarray] = (
        np.zeros((trace.length + 1, max(num_users, 1)), dtype=np.int64)
        if record_curve
        else None
    )

    owners = trace.owners
    requests = trace.requests
    for t in range(requests.size):
        page = int(requests[t])
        if page in cache:
            hits += 1
            policy.on_hit(page, t)
        else:
            user_misses[owners[page]] += 1
            if len(cache) < k:
                cache.add(page)
                policy.on_insert(page, t)
            else:
                victim = policy.choose_victim(page, t)
                if validate:
                    if victim not in cache:
                        raise RuntimeError(
                            f"{policy.name} evicted non-resident page {victim} at t={t}"
                        )
                    if victim == page:
                        raise RuntimeError(
                            f"{policy.name} evicted the requested page {page} at t={t}"
                        )
                cache.remove(victim)
                policy.on_evict(victim, t)
                cache.add(page)
                policy.on_insert(page, t)
                if events is not None:
                    events.append(EvictionEvent(t=t, requested=page, victim=victim))
        if curve is not None:
            curve[t + 1] = user_misses

    return SimResult(
        policy_name=policy.name,
        trace_name=trace.name,
        k=k,
        hits=hits,
        misses=int(user_misses.sum()),
        user_misses=user_misses,
        final_cache=sorted(cache),
        events=events,
        miss_curve=curve,
    )


def replay_evictions(trace: Trace, k: int, events: Sequence[EvictionEvent]) -> np.ndarray:
    """Recompute per-user miss counts implied by an eviction log.

    Used by tests to cross-check that a recorded eviction schedule is
    consistent with the engine's accounting: replays the trace applying
    the logged evictions verbatim and returns the per-user miss counts.
    Raises if the log is infeasible (evicting non-resident pages or
    missing an eviction when one was required).
    """
    k = check_positive_int(k, "k")
    by_time = {e.t: e for e in events}
    cache: set[int] = set()
    user_misses = np.zeros(max(trace.num_users, 1), dtype=np.int64)
    for t in range(trace.length):
        page = int(trace.requests[t])
        if page in cache:
            if t in by_time:
                raise ValueError(f"event at t={t} but request was a hit")
            continue
        user_misses[trace.owners[page]] += 1
        if len(cache) < k:
            if t in by_time:
                raise ValueError(f"event at t={t} but cache had space")
            cache.add(page)
        else:
            if t not in by_time:
                raise ValueError(f"miss with full cache at t={t} but no event")
            ev = by_time[t]
            if ev.requested != page:
                raise ValueError(f"event at t={t} records wrong page")
            if ev.victim not in cache:
                raise ValueError(f"event at t={t} evicts non-resident {ev.victim}")
            cache.remove(ev.victim)
            cache.add(page)
    return user_misses


__all__ = ["EvictionEvent", "SimResult", "simulate", "replay_evictions"]
