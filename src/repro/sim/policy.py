"""The eviction-policy protocol all algorithms implement.

The engine (:mod:`repro.sim.engine`) owns the cache contents and
capacity enforcement; a policy only maintains its private metadata and
answers one question — *which resident page to evict* — when the cache
is full and a miss occurs.  This keeps every policy (the paper's
ALG-DISCRETE/ALG-CONT, and all baselines) running under identical
mechanics, so measured miss counts are attributable to the decision
rule alone.

Lifecycle per simulation::

    policy.reset(ctx)                  # fresh state, sees k / owners / costs
    for t, page in enumerate(trace):
        if hit:      policy.on_hit(page, t)
        elif space:  policy.on_insert(page, t)
        else:        victim = policy.choose_victim(page, t)
                     policy.on_evict(victim, t)      # engine notifies
                     policy.on_insert(page, t)

The fast engine (:func:`repro.sim.engine.simulate` with the default
``engine="auto"``) delivers consecutive hits *between* two misses as one
:meth:`EvictionPolicy.on_hit_batch` call instead of per-request
:meth:`~EvictionPolicy.on_hit` calls.  Residency only changes on misses,
so a policy observes exactly the same information either way; the
default ``on_hit_batch`` loops ``on_hit`` and is therefore always
correct, while policies whose hit bookkeeping collapses (recency moves
where only the last occurrence matters, idempotent refreshes, counter
bumps) override it with a tuned version.  Policies that ignore hits
entirely (FIFO, Random) declare ``ignores_hits = True`` and the engine
skips delivery altogether.

Offline policies (Belady, the §4 batch strategy) set
``requires_future = True`` and read ``ctx.trace``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.sim.trace import Trace


@dataclass
class SimContext:
    """Everything a policy may consult when reset.

    Attributes
    ----------
    k:
        Cache capacity (the paper's :math:`k`).
    owners:
        ``owners[p]`` = user owning page ``p`` (the paper's
        :math:`i(p)`).
    num_users:
        Number of users :math:`n`.
    costs:
        Per-user cost functions, or ``None`` for cost-blind baselines.
    trace:
        The full trace — present only for offline policies; online
        policies must not read it (enforced by the engine handing
        ``None`` unless ``requires_future``).
    """

    k: int
    owners: np.ndarray
    num_users: int
    costs: Optional[Sequence[CostFunction]] = None
    trace: Optional[Trace] = None
    #: Total pages in the universe (always available; not future info).
    num_pages: int = 0
    #: Trace length T (known to the *simulation*, not the adversary; the
    #: paper's algorithms never read it — it sizes the dual ledger).
    horizon: int = 0

    def cost_of(self, user: int) -> CostFunction:
        if self.costs is None:
            raise ValueError("this context has no cost functions")
        return self.costs[user]


class EvictionPolicy(ABC):
    """Base class for all eviction policies.

    Subclasses must implement :meth:`reset` and :meth:`choose_victim`;
    the hit/insert/evict notifications default to no-ops.
    """

    #: Set by offline policies that must see the whole trace up front.
    requires_future: bool = False

    #: Set by cost-aware policies that need ``ctx.costs``.
    requires_costs: bool = False

    #: Set by policies whose state is unaffected by hits (``on_hit`` is
    #: a no-op).  The fast engine then skips hit delivery entirely, so
    #: long hit runs cost it a vectorized scan and nothing else.
    ignores_hits: bool = False

    #: Short name used in experiment tables; subclasses override.
    name: str = "policy"

    @abstractmethod
    def reset(self, ctx: SimContext) -> None:
        """Clear state for a fresh simulation over *ctx*."""

    @abstractmethod
    def choose_victim(self, page: int, t: int) -> int:
        """Return the resident page to evict so *page* can be inserted.

        Called only when the cache is full and *page* missed.  The
        returned page must currently be resident; the engine validates
        this and raises otherwise.
        """

    def on_hit(self, page: int, t: int) -> None:
        """*page* was requested at time *t* and was resident."""

    def on_hit_batch(self, pages: Sequence[int], t0: int) -> None:
        """A maximal run of consecutive hits: ``pages[i]`` was requested
        (and resident) at time ``t0 + i``; no misses occurred in between,
        so residency was constant across the run.

        The default delivers each hit through :meth:`on_hit` in order,
        which is correct for every policy.  Override when the run can be
        processed cheaper in one pass — e.g. recency orders depend only
        on each page's *last* occurrence, reference bits and idempotent
        budget refreshes need each distinct page only once, and
        frequency counters can take one bump of ``count`` instead of
        ``count`` bumps of one.  An override must leave the policy in a
        state observably identical (victim choices, introspection) to
        the per-hit loop; the engine-equivalence suite enforces this for
        every registered policy.
        """
        on_hit = self.on_hit
        t = t0
        for page in pages:
            on_hit(page, t)
            t += 1

    def on_insert(self, page: int, t: int) -> None:
        """*page* was inserted at time *t* (after a miss)."""

    def on_evict(self, page: int, t: int) -> None:
        """*page* chosen by :meth:`choose_victim` was removed at *t*."""

    def on_flush(self, page: int, t: int) -> None:
        """*page* was removed by an external mechanism (e.g. a tenant
        migration in the multi-pool simulator), **not** by this policy's
        own victim choice.  Defaults to :meth:`on_evict`; policies whose
        eviction bookkeeping assumes the victim is their own choice
        (ALG-DISCRETE's dual updates) override this to simply forget
        the page."""
        self.on_evict(page, t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


__all__ = ["SimContext", "EvictionPolicy"]
