"""Request traces for the multi-tenant caching problem.

A :class:`Trace` is the paper's request sequence
:math:`\\sigma = (p_1, \\dots, p_T)` together with the ownership map
:math:`i(p)`: pages are integers ``0..P-1``, users are integers
``0..n-1``, and ``owners[p]`` is the user owning page ``p``.  Storing
both as numpy arrays keeps workload generation and statistics
vectorised (the hot paths per the HPC guides); the per-request
simulation loop consumes plain Python ints.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class Trace:
    """An immutable multi-tenant request sequence.

    Parameters
    ----------
    requests:
        1-D integer array; ``requests[t]`` is the page requested at
        (0-based) time ``t``.
    owners:
        1-D integer array of length ``num_pages``; ``owners[p]`` is the
        user owning page ``p``.  Every page id in ``requests`` must be a
        valid index into ``owners``.
    name:
        Optional label used in experiment tables.
    """

    requests: np.ndarray
    owners: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        req = np.ascontiguousarray(np.asarray(self.requests, dtype=np.int64))
        own = np.ascontiguousarray(np.asarray(self.owners, dtype=np.int64))
        if req.ndim != 1:
            raise ValueError(f"requests must be 1-D, got shape {req.shape}")
        if own.ndim != 1 or own.size == 0:
            raise ValueError("owners must be a non-empty 1-D array")
        if req.size and (req.min() < 0 or req.max() >= own.size):
            raise ValueError(
                f"requests reference pages outside [0, {own.size - 1}]"
            )
        if own.min() < 0:
            raise ValueError("user ids must be non-negative")
        object.__setattr__(self, "requests", req)
        object.__setattr__(self, "owners", own)

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.requests.size)

    @property
    def length(self) -> int:
        """The paper's :math:`T`."""
        return int(self.requests.size)

    @property
    def num_pages(self) -> int:
        """Total pages in the universe :math:`P` (requested or not)."""
        return int(self.owners.size)

    @property
    def num_users(self) -> int:
        """The paper's :math:`n = |U|` (max owner id + 1)."""
        return int(self.owners.max()) + 1 if self.owners.size else 0

    def owner_of(self, page: int) -> int:
        """The paper's :math:`i(p)`."""
        return int(self.owners[page])

    # ------------------------------------------------------------------
    # Derived quantities used throughout the paper's notation
    # ------------------------------------------------------------------
    def distinct_pages_requested(self) -> np.ndarray:
        """Sorted unique page ids appearing in the trace."""
        return np.unique(self.requests)

    def distinct_count_prefix(self) -> np.ndarray:
        """``out[t] = |B(t+1)|`` — distinct pages among the first ``t+1``
        requests (the paper's :math:`|B(t)|`, 1-indexed in the paper)."""
        if self.requests.size == 0:
            return np.zeros(0, dtype=np.int64)
        seen = np.zeros(self.num_pages, dtype=bool)
        out = np.empty(self.requests.size, dtype=np.int64)
        count = 0
        for t, p in enumerate(self.requests):
            if not seen[p]:
                seen[p] = True
                count += 1
            out[t] = count
        return out

    def request_counts(self) -> np.ndarray:
        """``out[p] = r(p, T)`` — total requests of each page."""
        return np.bincount(self.requests, minlength=self.num_pages).astype(np.int64)

    def per_user_request_counts(self) -> np.ndarray:
        """Total requests landing on each user's pages."""
        users = self.owners[self.requests]
        return np.bincount(users, minlength=self.num_users).astype(np.int64)

    def next_use_table(self) -> np.ndarray:
        """``out[t]`` = next time page ``requests[t]`` is requested after
        ``t``, or ``len(trace)`` if never — Belady's furthest-in-future
        oracle, computed in one backward pass."""
        T = self.requests.size
        out = np.empty(T, dtype=np.int64)
        nxt = np.full(self.num_pages, T, dtype=np.int64)
        for t in range(T - 1, -1, -1):
            p = self.requests[t]
            out[t] = nxt[p]
            nxt[p] = t
        return out

    def interval_indices(self) -> np.ndarray:
        """``out[t] = j(p_t, t)`` — the paper's interval index: this is
        the ``j``-th request of page ``p_t`` (1-based)."""
        T = self.requests.size
        out = np.empty(T, dtype=np.int64)
        counts = np.zeros(self.num_pages, dtype=np.int64)
        for t, p in enumerate(self.requests):
            counts[p] += 1
            out[t] = counts[p]
        return out

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def with_name(self, name: str) -> "Trace":
        """Copy of this trace under a different display name."""
        return Trace(self.requests, self.owners, name=name)

    def head(self, t: int) -> "Trace":
        """Prefix of the first *t* requests (same page universe)."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        return Trace(self.requests[:t], self.owners, name=f"{self.name}[:{t}]")

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate request streams over a shared page universe."""
        if other.num_pages != self.num_pages or not np.array_equal(
            other.owners, self.owners
        ):
            raise ValueError("traces must share the same page universe")
        return Trace(
            np.concatenate([self.requests, other.requests]),
            self.owners,
            name=f"{self.name}+{other.name}",
        )

    def pages_of_user(self, user: int) -> np.ndarray:
        """The paper's :math:`P_i` — page ids owned by *user*."""
        return np.nonzero(self.owners == user)[0]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_columnar(self, path: str, **kwargs):
        """Persist as an out-of-core columnar store; returns a
        :class:`~repro.sim.colstore.TraceReader` over it.

        Shorthand for :func:`repro.sim.colstore.write_columnar` —
        JSON (:meth:`save`) suits small fixture traces, the columnar
        store is the format for anything measured in millions of
        requests (4 bytes/request, streamable without loading).
        """
        from repro.sim.colstore import write_columnar

        return write_columnar(self, path, **kwargs)

    def to_json(self) -> str:
        """Serialise to a compact JSON document."""
        return json.dumps(
            {
                "name": self.name,
                "owners": self.owners.tolist(),
                "requests": self.requests.tolist(),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        doc = json.loads(text)
        return cls(
            np.asarray(doc["requests"], dtype=np.int64),
            np.asarray(doc["owners"], dtype=np.int64),
            name=doc.get("name", "trace"),
        )

    def save(self, path: str) -> None:
        """Write the JSON serialisation to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, T={self.length}, "
            f"pages={self.num_pages}, users={self.num_users})"
        )


def make_trace(
    requests: Sequence[int],
    owners: Union[Sequence[int], dict],
    name: str = "trace",
) -> Trace:
    """Build a :class:`Trace` from Python-friendly inputs.

    ``owners`` may be a sequence indexed by page id, or a
    ``{page: user}`` mapping (pages absent from the mapping default to
    user 0).
    """
    req = np.asarray(list(requests), dtype=np.int64)
    if isinstance(owners, dict):
        num_pages = max(
            (max(owners) if owners else -1),
            (int(req.max()) if req.size else -1),
        ) + 1
        own = np.zeros(max(num_pages, 1), dtype=np.int64)
        for page, user in owners.items():
            own[page] = user
    else:
        own = np.asarray(list(owners), dtype=np.int64)
    return Trace(req, own, name=name)


def single_user_trace(requests: Sequence[int], num_pages: Optional[int] = None, name: str = "trace") -> Trace:
    """A classical (single-tenant) paging trace: all pages owned by user 0."""
    req = np.asarray(list(requests), dtype=np.int64)
    if num_pages is None:
        num_pages = int(req.max()) + 1 if req.size else 1
    num_pages = check_positive_int(num_pages, "num_pages")
    return Trace(req, np.zeros(num_pages, dtype=np.int64), name=name)


__all__ = ["Trace", "make_trace", "single_user_trace"]
