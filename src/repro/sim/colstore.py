"""Out-of-core columnar trace store.

A *columnar trace* is a directory holding the request column of a
:class:`~repro.sim.trace.Trace` as mmap-able ``.npy`` segment files
plus a small JSON header::

    mytrace.coltrace/
        header.json        dtype, counts, segment table, vocab sizes
        seg-00000.npy      requests[0 : segment_rows]          (int32/int64)
        seg-00001.npy      requests[segment_rows : ...]
        owners.npy         page -> tenant                      (int64)
        page_labels.txt    optional: original page label per dense id
        tenant_labels.txt  optional: original tenant label per dense id

The time column is implicit (request *i* of the store has global clock
``t = i``) and the tenant column is derived (``tenant = owners[page]``),
so one integer per request is all that touches disk — 4 bytes/request
at the default ``int32``.  Segments are loaded with
``np.load(mmap_mode="r")`` one at a time: :meth:`TraceReader.batches`
yields zero-copy array views into the current segment's mapping and
drops the mapping when the segment is exhausted, so peak resident
memory is bounded by one segment (~16 MB at the defaults) no matter how
long the trace is.  That is the property the streaming engine
(:func:`repro.sim.engine.simulate` with a reader) and the serving
replay path (:func:`repro.serve.client.replay`) build on: a 10⁸-request
replay runs with the same flat RSS as a 10⁵ one.

Converters are constant-memory by construction: :func:`convert_csv`
streams a ``page,tenant`` CSV (``.gz`` ok) row by row, densifying
labels in first-appearance order — the same vocabulary convention as
:func:`repro.sim.trace_io.load_csv` — and appending label files as ids
are assigned, never holding the request column in RAM.
:func:`convert_kv_log` adapts the common CDN/storage key-value access
log shape (``timestamp,key,key_size,value_size,client_id,op,ttl`` —
the Twemcache/Twitter production-trace format) with a
:class:`SpillableIdMap` that moves the key→id mapping to a disk-backed
SQLite table once it outgrows a RAM threshold.

The format is versioned via ``header.json``; anything this module
cannot read raises :class:`ValueError` with the offending field.
"""

from __future__ import annotations

import csv
import gzip
import json
import os
import sqlite3
import tempfile
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from repro.sim.trace import Trace
from repro.util.validation import check_positive_int

FORMAT_NAME = "repro-coltrace"
FORMAT_VERSION = 1

#: Rows per ``.npy`` segment file.  4 Mi rows = 16 MB at int32 — large
#: enough that mmap/munmap churn is negligible, small enough that the
#: one-segment-resident bound keeps streaming RSS flat.
DEFAULT_SEGMENT_ROWS = 4 * 1024 * 1024

#: Requests per zero-copy batch view yielded by :meth:`TraceReader.batches`.
DEFAULT_BATCH = 1 << 16

_HEADER_FILE = "header.json"
_OWNERS_FILE = "owners.npy"
_PAGE_LABELS_FILE = "page_labels.txt"
_TENANT_LABELS_FILE = "tenant_labels.txt"

_DTYPES = {"int32": np.int32, "int64": np.int64}


def _open_text(path: str, mode: str) -> TextIO:
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


def is_columnar(path: str) -> bool:
    """True when *path* is a columnar trace directory (has a header)."""
    return os.path.isdir(path) and os.path.isfile(
        os.path.join(path, _HEADER_FILE)
    )


class ColumnarTraceWriter:
    """Append-only writer for the columnar format (bounded memory).

    Requests arrive through :meth:`append` in any chunking; the writer
    fills one preallocated segment buffer and flushes a ``.npy`` file
    each time it fills, so memory is ``segment_rows`` elements
    regardless of the trace length.  ``owners`` may be supplied at
    construction (known page universe) or via :meth:`set_owners` before
    :meth:`close` (converters discover the universe while streaming).

    Use as a context manager; the header is written by :meth:`close`
    only after a clean run, so a half-written directory is never
    mistaken for a valid store (``is_columnar`` stays False).
    """

    def __init__(
        self,
        path: str,
        *,
        name: Optional[str] = None,
        dtype: str = "int32",
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        owners: Optional[np.ndarray] = None,
        extra_header: Optional[Dict[str, object]] = None,
    ) -> None:
        if dtype not in _DTYPES:
            raise ValueError(f"dtype must be one of {sorted(_DTYPES)}, got {dtype!r}")
        self.path = path
        self.name = name or os.path.basename(os.path.normpath(path))
        self.dtype = dtype
        self.segment_rows = check_positive_int(segment_rows, "segment_rows")
        self._max_value = np.iinfo(_DTYPES[dtype]).max
        self._buf = np.empty(self.segment_rows, dtype=_DTYPES[dtype])
        self._fill = 0
        self._segments: List[Dict[str, object]] = []
        self._total = 0
        self._max_page = -1
        self._owners: Optional[np.ndarray] = None
        self._extra_header = dict(extra_header or {})
        self._closed = False
        os.makedirs(path, exist_ok=True)
        if owners is not None:
            self.set_owners(owners)

    def set_owners(self, owners: np.ndarray) -> None:
        """Record the page→tenant map (defines the page universe)."""
        owners = np.ascontiguousarray(np.asarray(owners, dtype=np.int64))
        if owners.ndim != 1 or owners.size == 0:
            raise ValueError("owners must be a non-empty 1-D array")
        if owners.min() < 0:
            raise ValueError("owners must be non-negative tenant ids")
        self._owners = owners

    def append(self, pages: Union[np.ndarray, Sequence[int]]) -> None:
        """Append a chunk of page requests (any size, any int dtype)."""
        arr = np.asarray(pages)
        if arr.size == 0:
            return
        if arr.ndim != 1:
            raise ValueError("pages must be 1-D")
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0:
            raise ValueError(f"negative page id {lo}")
        if hi > self._max_value:
            raise ValueError(
                f"page id {hi} does not fit dtype {self.dtype}; "
                f"pass dtype='int64'"
            )
        if hi > self._max_page:
            self._max_page = hi
        offset = 0
        while offset < arr.size:
            take = min(self.segment_rows - self._fill, arr.size - offset)
            self._buf[self._fill : self._fill + take] = arr[offset : offset + take]
            self._fill += take
            offset += take
            if self._fill == self.segment_rows:
                self._flush_segment()
        self._total += int(arr.size)

    def _flush_segment(self) -> None:
        if not self._fill:
            return
        fname = f"seg-{len(self._segments):05d}.npy"
        np.save(os.path.join(self.path, fname), self._buf[: self._fill])
        self._segments.append({"file": fname, "rows": int(self._fill)})
        self._fill = 0

    def close(self) -> str:
        """Flush the tail segment, write owners + header; returns the path."""
        if self._closed:
            return self.path
        if self._total == 0:
            raise ValueError("columnar trace contains no requests")
        if self._owners is None:
            raise ValueError("owners not set (set_owners before close)")
        if self._max_page >= self._owners.size:
            raise ValueError(
                f"page {self._max_page} outside the owners universe "
                f"[0, {self._owners.size})"
            )
        self._flush_segment()
        np.save(os.path.join(self.path, _OWNERS_FILE), self._owners)
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": self.name,
            "dtype": self.dtype,
            "total_requests": self._total,
            "segment_rows": self.segment_rows,
            "segments": self._segments,
            "num_pages": int(self._owners.size),
            "num_users": int(self._owners.max()) + 1,
            "owners_file": _OWNERS_FILE,
        }
        header.update(self._extra_header)
        tmp = os.path.join(self.path, _HEADER_FILE + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(header, fh, indent=1)
        os.replace(tmp, os.path.join(self.path, _HEADER_FILE))
        self._closed = True
        self._buf = np.empty(0, dtype=self._buf.dtype)
        return self.path

    def __enter__(self) -> "ColumnarTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


class TraceReader:
    """Zero-copy batch views over a columnar trace directory.

    Duck-compatible with :class:`~repro.sim.trace.Trace` for the
    attributes the streaming stack needs (``name``, ``length``,
    ``num_pages``, ``num_users``, ``owners``) plus :meth:`batches`,
    which yields ``(t0, pages_view)`` pairs — each view is a slice of
    the current segment's memory mapping, never a copy.  Only one
    segment is mapped at a time; iterating past a segment boundary
    unmaps the previous one, so resident memory stays ~one segment for
    arbitrarily long traces.

    ``owners`` is materialized in RAM (the page universe is RAM-bounded
    by design across the repo; it is the request *column* that is not).
    """

    def __init__(self, path: str, *, limit: Optional[int] = None) -> None:
        header_path = os.path.join(path, _HEADER_FILE)
        if not os.path.isfile(header_path):
            raise ValueError(f"{path!r} is not a columnar trace (no header.json)")
        with open(header_path, encoding="utf-8") as fh:
            header = json.load(fh)
        if header.get("format") != FORMAT_NAME:
            raise ValueError(f"unknown format {header.get('format')!r}")
        if int(header.get("version", -1)) > FORMAT_VERSION:
            raise ValueError(f"unsupported version {header.get('version')}")
        if header.get("dtype") not in _DTYPES:
            raise ValueError(f"unsupported dtype {header.get('dtype')!r}")
        total = int(header["total_requests"])
        seg_total = sum(int(seg["rows"]) for seg in header["segments"])
        if seg_total != total:
            raise ValueError(
                f"segment rows sum to {seg_total}, header says {total}"
            )
        for seg in header["segments"]:
            if not os.path.isfile(os.path.join(path, seg["file"])):
                raise ValueError(f"missing segment file {seg['file']!r}")
        self.path = path
        self.header = header
        self._total = total
        if limit is not None:
            limit = check_positive_int(limit, "limit")
        self._limit = None if limit is None or limit >= total else limit
        self.owners: np.ndarray = np.load(
            os.path.join(path, header["owners_file"])
        ).astype(np.int64, copy=False)
        self.num_pages = int(header["num_pages"])
        self.num_users = int(header["num_users"])
        base = header.get("name") or os.path.basename(os.path.normpath(path))
        self.name = base if self._limit is None else f"{base}[:{self._limit}]"

    # -- Trace-compatible surface --------------------------------------
    @property
    def length(self) -> int:
        return self._total if self._limit is None else self._limit

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.header["dtype"])

    @property
    def nbytes_per_request(self) -> int:
        """On-disk bytes per request (the request column only)."""
        return int(self.dtype.itemsize)

    def bytes_on_disk(self) -> int:
        """Total size of the store directory in bytes."""
        return sum(
            os.path.getsize(os.path.join(self.path, f))
            for f in os.listdir(self.path)
        )

    def head(self, n: int) -> "TraceReader":
        """A reader over the first ``min(n, length)`` requests."""
        return TraceReader(self.path, limit=min(n, self.length))

    def batches(
        self, batch_size: int = DEFAULT_BATCH
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(t0, pages)`` where ``pages`` is a zero-copy view of
        at most *batch_size* requests starting at global clock *t0*."""
        batch_size = check_positive_int(batch_size, "batch_size")
        remaining = self.length
        t0 = 0
        for seg in self.header["segments"]:
            if remaining <= 0:
                break
            mm = np.load(
                os.path.join(self.path, seg["file"]), mmap_mode="r"
            )
            rows = min(int(seg["rows"]), remaining)
            for lo in range(0, rows, batch_size):
                hi = min(lo + batch_size, rows)
                yield t0 + lo, mm[lo:hi]
            t0 += rows
            remaining -= rows
            del mm  # munmap once the consumer drops its views

    def materialize(self) -> Trace:
        """Load the (limited) request column into an in-RAM Trace."""
        parts = [np.asarray(chunk, dtype=np.int64) for _t0, chunk in self.batches()]
        requests = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        return Trace(requests, self.owners, name=self.name)

    def page_labels(self) -> Optional[List[str]]:
        """Original page labels (dense id order), when the store has them."""
        return self._labels("page_labels_file")

    def tenant_labels(self) -> Optional[List[str]]:
        """Original tenant labels (dense id order), when the store has them."""
        return self._labels("tenant_labels_file")

    def _labels(self, key: str) -> Optional[List[str]]:
        fname = self.header.get(key)
        if not fname:
            return None
        with _open_text(os.path.join(self.path, fname), "r") as fh:
            return [line.rstrip("\n") for line in fh]

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceReader(name={self.name!r}, T={self.length}, "
            f"pages={self.num_pages}, users={self.num_users}, "
            f"dtype={self.header['dtype']}, "
            f"segments={len(self.header['segments'])})"
        )


def open_trace(path: str, *, limit: Optional[int] = None) -> TraceReader:
    """Open a columnar trace directory for streaming."""
    return TraceReader(path, limit=limit)


def write_columnar(
    trace: Trace,
    path: str,
    *,
    dtype: str = "auto",
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    page_labels: Optional[Sequence[str]] = None,
    tenant_labels: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> TraceReader:
    """Persist an in-RAM :class:`Trace` as a columnar store.

    ``dtype="auto"`` picks ``int32`` when every page id fits (the usual
    4 bytes/request) and ``int64`` otherwise.
    """
    if dtype == "auto":
        dtype = "int32" if trace.num_pages <= np.iinfo(np.int32).max else "int64"
    extra: Dict[str, object] = {}
    if page_labels is not None:
        if len(page_labels) < trace.num_pages:
            raise ValueError(f"need {trace.num_pages} page labels")
        extra["page_labels_file"] = _PAGE_LABELS_FILE
    if tenant_labels is not None:
        if len(tenant_labels) < trace.num_users:
            raise ValueError(f"need {trace.num_users} tenant labels")
        extra["tenant_labels_file"] = _TENANT_LABELS_FILE
    with ColumnarTraceWriter(
        path,
        name=name or trace.name,
        dtype=dtype,
        segment_rows=segment_rows,
        owners=trace.owners,
        extra_header=extra,
    ) as writer:
        # Chunked so the int64 -> int32 cast never doubles the trace.
        for lo in range(0, trace.length, segment_rows):
            writer.append(trace.requests[lo : lo + segment_rows])
        if page_labels is not None:
            _write_labels(path, _PAGE_LABELS_FILE, page_labels, trace.num_pages)
        if tenant_labels is not None:
            _write_labels(
                path, _TENANT_LABELS_FILE, tenant_labels, trace.num_users
            )
    return TraceReader(path)


def _write_labels(
    dirpath: str, fname: str, labels: Sequence[str], count: int
) -> None:
    with _open_text(os.path.join(dirpath, fname), "w") as fh:
        for label in labels[:count]:
            label = str(label)
            if "\n" in label:
                raise ValueError(f"label {label!r} contains a newline")
            fh.write(label + "\n")


class _LabelSink:
    """Streaming label writer: one line per dense id, appended as ids
    are assigned — constant memory even for billion-key vocabularies."""

    def __init__(self, dirpath: str, fname: str) -> None:
        self._fh = _open_text(os.path.join(dirpath, fname), "w")
        self.fname = fname

    def add(self, label: str) -> None:
        if "\n" in label:
            raise ValueError(f"label {label!r} contains a newline")
        self._fh.write(label + "\n")

    def close(self) -> None:
        self._fh.close()


# ----------------------------------------------------------------------
# Streaming converters
# ----------------------------------------------------------------------
_APPEND_CHUNK = 1 << 16


class _ChunkedAppender:
    """Buffer scalar page ids into fixed-size numpy chunks for the writer."""

    def __init__(self, writer: ColumnarTraceWriter) -> None:
        self._writer = writer
        self._buf = np.empty(_APPEND_CHUNK, dtype=np.int64)
        self._fill = 0

    def add(self, page: int) -> None:
        self._buf[self._fill] = page
        self._fill += 1
        if self._fill == _APPEND_CHUNK:
            self._writer.append(self._buf)
            self._fill = 0

    def flush(self) -> None:
        if self._fill:
            self._writer.append(self._buf[: self._fill])
            self._fill = 0


class _OwnerTable:
    """Growable page→tenant array for converters that discover the page
    universe while streaming (first-appearance ownership)."""

    def __init__(self) -> None:
        self._arr = np.full(1 << 16, -1, dtype=np.int64)
        self._size = 0

    def assign(self, page: int, tenant: int) -> None:
        if page >= self._arr.size:
            grown = np.full(
                max(self._arr.size * 2, page + 1), -1, dtype=np.int64
            )
            grown[: self._arr.size] = self._arr
            self._arr = grown
        self._arr[page] = tenant
        if page >= self._size:
            self._size = page + 1

    def owner_of(self, page: int) -> int:
        return int(self._arr[page]) if page < self._size else -1

    def array(self) -> np.ndarray:
        return self._arr[: self._size]


def convert_csv(
    source: Union[str, TextIO],
    out: str,
    *,
    name: Optional[str] = None,
    dtype: str = "int32",
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    store_labels: bool = True,
) -> TraceReader:
    """Stream a ``page,tenant`` CSV (``.gz`` ok) into a columnar store.

    Constant memory in the trace length: the request column goes
    through a :class:`ColumnarTraceWriter` chunk buffer and label files
    are appended as ids are assigned.  Memory grows only with the
    vocabulary (the page universe), exactly like every other consumer
    of an ownership array.  Densification order and the
    two-tenants-per-page error match
    :func:`repro.sim.trace_io.load_csv`, so the vocabulary round-trips.
    """
    close = False
    if isinstance(source, str):
        fh: TextIO = _open_text(source, "r")
        close = True
        if name is None:
            name = os.path.basename(source)
    else:
        fh = source
    page_sink = tenant_sink = None
    try:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not {"page", "tenant"} <= set(
            reader.fieldnames
        ):
            raise ValueError(
                f"CSV must have 'page' and 'tenant' columns, got {reader.fieldnames}"
            )
        extra: Dict[str, object] = {}
        if store_labels:
            extra["page_labels_file"] = _PAGE_LABELS_FILE
            extra["tenant_labels_file"] = _TENANT_LABELS_FILE
        writer = ColumnarTraceWriter(
            out,
            name=name,
            dtype=dtype,
            segment_rows=segment_rows,
            extra_header=extra,
        )
        if store_labels:
            page_sink = _LabelSink(out, _PAGE_LABELS_FILE)
            tenant_sink = _LabelSink(out, _TENANT_LABELS_FILE)
        page_ids: Dict[str, int] = {}
        tenant_ids: Dict[str, int] = {}
        owner_table = _OwnerTable()
        appender = _ChunkedAppender(writer)
        for lineno, row in enumerate(reader, start=2):
            page_label = row["page"]
            tenant_label = row["tenant"]
            if page_label is None or tenant_label is None:
                raise ValueError(f"line {lineno}: missing page/tenant")
            tid = tenant_ids.get(tenant_label)
            if tid is None:
                tid = tenant_ids[tenant_label] = len(tenant_ids)
                if tenant_sink is not None:
                    tenant_sink.add(tenant_label)
            pid = page_ids.get(page_label)
            if pid is None:
                pid = page_ids[page_label] = len(page_ids)
                owner_table.assign(pid, tid)
                if page_sink is not None:
                    page_sink.add(page_label)
            elif owner_table.owner_of(pid) != tid:
                raise ValueError(
                    f"line {lineno}: page {page_label!r} owned by two tenants"
                )
            appender.add(pid)
        if not page_ids:
            raise ValueError("CSV contains no requests")
        appender.flush()
        writer.set_owners(owner_table.array())
        writer.close()
        return TraceReader(out)
    finally:
        if page_sink is not None:
            page_sink.close()
        if tenant_sink is not None:
            tenant_sink.close()
        if close:
            fh.close()


class SpillableIdMap:
    """label → dense id map that spills to disk past a RAM threshold.

    Below *spill_threshold* entries it is a plain dict.  At the
    threshold, the mapping moves into a temporary SQLite table (the
    container's only always-available disk-backed map — the ``dbm``
    backends here are the pure-Python ``dumb`` one, whose key index
    stays in RAM) and a bounded hot dict absorbs the skew of real key
    popularity, so lookups of frequent keys stay O(1) in RAM while the
    cold tail pages from disk.
    """

    def __init__(
        self,
        spill_threshold: int = 2_000_000,
        *,
        spill_dir: Optional[str] = None,
        hot_capacity: Optional[int] = None,
    ) -> None:
        self.spill_threshold = check_positive_int(
            spill_threshold, "spill_threshold"
        )
        self._spill_dir = spill_dir
        self._hot_capacity = hot_capacity or max(1024, spill_threshold // 4)
        self._mem: Dict[str, int] = {}
        self._db: Optional[sqlite3.Connection] = None
        self._db_path: Optional[str] = None
        self._pending: Dict[str, int] = {}
        self._n = 0

    @property
    def spilled(self) -> bool:
        return self._db is not None

    def __len__(self) -> int:
        return self._n

    def get_or_assign(self, label: str) -> Tuple[int, bool]:
        """Return ``(dense id, is_new)`` for *label*."""
        if self._db is None:
            got = self._mem.get(label)
            if got is not None:
                return got, False
            idx = self._n
            self._mem[label] = idx
            self._n += 1
            if self._n >= self.spill_threshold:
                self._spill()
            return idx, True
        got = self._mem.get(label)
        if got is None:
            got = self._pending.get(label)
        if got is None:
            row = self._db.execute(
                "SELECT id FROM ids WHERE label = ?", (label,)
            ).fetchone()
            got = row[0] if row is not None else None
        if got is not None:
            self._remember(label, got)
            return got, False
        idx = self._n
        self._n += 1
        self._pending[label] = idx
        if len(self._pending) >= 4096:
            self._flush_pending()
        self._remember(label, idx)
        return idx, True

    def _remember(self, label: str, idx: int) -> None:
        if len(self._mem) >= self._hot_capacity:
            self._mem.clear()
        self._mem[label] = idx

    def _spill(self) -> None:
        fd, path = tempfile.mkstemp(
            prefix="idmap-", suffix=".sqlite", dir=self._spill_dir
        )
        os.close(fd)
        db = sqlite3.connect(path)
        db.execute("PRAGMA journal_mode=OFF")
        db.execute("PRAGMA synchronous=OFF")
        db.execute("CREATE TABLE ids (label TEXT PRIMARY KEY, id INTEGER)")
        db.executemany(
            "INSERT INTO ids VALUES (?, ?)", list(self._mem.items())
        )
        db.commit()
        self._db = db
        self._db_path = path
        self._mem = {}

    def _flush_pending(self) -> None:
        if self._db is not None and self._pending:
            self._db.executemany(
                "INSERT INTO ids VALUES (?, ?)", list(self._pending.items())
            )
            self._db.commit()
            self._pending = {}

    def close(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None
        if self._db_path is not None:
            try:
                os.unlink(self._db_path)
            except OSError:  # pragma: no cover - already gone
                pass
            self._db_path = None

    def __enter__(self) -> "SpillableIdMap":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def convert_kv_log(
    source: Union[str, TextIO],
    out: str,
    *,
    key_col: int = 1,
    tenant_col: int = 4,
    delimiter: str = ",",
    has_header: bool = False,
    name: Optional[str] = None,
    dtype: str = "int32",
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    spill_threshold: int = 2_000_000,
    spill_dir: Optional[str] = None,
    limit: Optional[int] = None,
    strict_ownership: bool = False,
) -> TraceReader:
    """Adapt a key-value access log into a columnar trace, streaming.

    The default column layout is the Twemcache/Twitter production-trace
    shape ``timestamp,key,key_size,value_size,client_id,operation,ttl``
    (*key_col*/*tenant_col* select other layouts).  Keys densify to
    page ids through a :class:`SpillableIdMap` — constant RAM even for
    vocabularies larger than memory — and clients densify to tenant
    ids through a plain dict (tenant counts are small by assumption).

    A key accessed by several clients keeps its **first** requester as
    owner (the model's ownership map is per page); pass
    ``strict_ownership=True`` to make that an error instead, matching
    the CSV converters.  ``limit`` stops after that many log records
    (for sampling giant logs).  Labels are not stored — a billion-key
    label file would defeat the point; keep the source log as the
    mapping record.
    """
    close = False
    if isinstance(source, str):
        fh: TextIO = _open_text(source, "r")
        close = True
        if name is None:
            name = os.path.basename(source)
    else:
        fh = source
    try:
        rows = csv.reader(fh, delimiter=delimiter)
        if has_header:
            next(rows, None)
        need = max(key_col, tenant_col) + 1
        writer = ColumnarTraceWriter(
            out,
            name=name or "kv-log",
            dtype=dtype,
            segment_rows=segment_rows,
        )
        appender = _ChunkedAppender(writer)
        owner_table = _OwnerTable()
        tenant_ids: Dict[str, int] = {}
        seen = 0
        with SpillableIdMap(spill_threshold, spill_dir=spill_dir) as keys:
            for lineno, row in enumerate(rows, start=1 + int(has_header)):
                if not row or (len(row) == 1 and not row[0].strip()):
                    continue
                if len(row) < need:
                    raise ValueError(
                        f"line {lineno}: expected >= {need} columns, got {len(row)}"
                    )
                key = row[key_col]
                client = row[tenant_col]
                tid = tenant_ids.setdefault(client, len(tenant_ids))
                pid, is_new = keys.get_or_assign(key)
                if is_new:
                    owner_table.assign(pid, tid)
                elif strict_ownership and owner_table.owner_of(pid) != tid:
                    raise ValueError(
                        f"line {lineno}: key {key!r} accessed by two clients "
                        f"under strict_ownership"
                    )
                appender.add(pid)
                seen += 1
                if limit is not None and seen >= limit:
                    break
        if not seen:
            raise ValueError("log contains no requests")
        appender.flush()
        writer.set_owners(owner_table.array())
        writer.close()
        return TraceReader(out)
    finally:
        if close:
            fh.close()


__all__ = [
    "DEFAULT_BATCH",
    "DEFAULT_SEGMENT_ROWS",
    "ColumnarTraceWriter",
    "SpillableIdMap",
    "TraceReader",
    "convert_csv",
    "convert_kv_log",
    "is_columnar",
    "open_trace",
    "write_columnar",
]
