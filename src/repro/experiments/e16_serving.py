"""E16 — the serving subsystem: served vs. simulated cost, and the
price of sharding.

Not a paper claim — a systems validation of :mod:`repro.serve`.  The
paper's ALG-DISCRETE is an *online* algorithm; this experiment runs it
(plus LRU and the static-partition baseline) behind the async server
against a multi-tenant SLA-flavoured mix and checks:

1. **Fidelity** — a single-shard server replaying the trace produces
   *exactly* the simulated miss vector (the serve↔simulate equivalence
   that ``tests/test_serve_equivalence.py`` enforces per policy), so
   every offline conclusion transfers to the serving path unchanged.
2. **The price of sharding** — with ``S`` hash-partitioned shards of
   ``k/S`` slots each, victim choices lose global scope; the convex
   objective :math:`\\sum_i f_i(a_i)` degrades smoothly, not
   catastrophically, while throughput headroom grows.
3. **Cost ordering survives serving** — ALG-DISCRETE's advantage over
   cost-blind LRU on convex costs, the intro's motivation, persists
   end-to-end through the server (single shard, where the algorithm's
   guarantee actually applies).

Expected shape: served(S=1) ≡ simulate for all three policies;
sharded cost within a small factor of unsharded; ALG-DISCRETE's served
cost ≤ LRU's served cost on the skewed-SLA mix.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import ascii_table
from repro.core.cost_functions import MonomialCost, ScaledCost
from repro.experiments.base import ExperimentOutput
from repro.policies import POLICY_REGISTRY
from repro.serve import serve_trace
from repro.sim import simulate, total_cost
from repro.workloads.builders import TenantSpec, multi_tenant_trace
from repro.workloads.streams import ZipfStream

EXPERIMENT_ID = "e16"
TITLE = "Serving subsystem: served vs simulated cost, price of sharding"

#: Policies run behind the server (online; offline policies can't shard).
SERVED = ("alg-discrete", "lru", "static-lru")

#: Shard counts compared (1 = the fidelity case).
SHARD_COUNTS = (1, 4)


def _instance(seed: int, length: int):
    """Four Zipf tenants with a 27:8:1:1 spread of monomial SLA scales —
    heavy cost asymmetry, the regime where cost-awareness matters."""
    tenants = [
        TenantSpec(ZipfStream(120, skew=0.9, perm_seed=seed + i), weight=w, name=f"t{i}")
        for i, w in enumerate((2.0, 1.0, 1.0, 0.5))
    ]
    trace = multi_tenant_trace(tenants, length, seed=seed, name="serving-mix")
    costs = [
        ScaledCost(MonomialCost(2), scale)
        for scale in (27.0, 8.0, 1.0, 1.0)
    ]
    return trace, costs


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    length = 6_000 if quick else 60_000
    k = 96
    trace, costs = _instance(seed, length)

    rows: List[Dict[str, object]] = []
    fidelity_ok: Dict[str, bool] = {}
    served_cost: Dict[int, Dict[str, float]] = {s: {} for s in SHARD_COUNTS}
    sim_cost: Dict[str, float] = {}

    for name in SERVED:
        sim = simulate(trace, POLICY_REGISTRY[name](), k, costs=costs)
        sim_cost[name] = total_cost(sim, costs)
        for shards in SHARD_COUNTS:
            report = serve_trace(
                trace, name, k, costs, num_shards=shards, policy_seed=seed
            )
            served_cost[shards][name] = report.cost(costs)
            if shards == 1:
                fidelity_ok[name] = (
                    report.hits == sim.hits
                    and report.misses == sim.misses
                    and report.user_misses.tolist() == sim.user_misses.tolist()
                )
            rows.append(
                {
                    "policy": name,
                    "shards": shards,
                    "served_misses": report.misses,
                    "sim_misses": sim.misses,
                    "served_cost": round(report.cost(costs), 1),
                    "sim_cost": round(sim_cost[name], 1),
                    "cost_vs_sim": round(
                        report.cost(costs) / sim_cost[name], 3
                    )
                    if sim_cost[name]
                    else 1.0,
                    "requests_per_sec": round(report.requests_per_sec),
                }
            )

    max_shard = max(SHARD_COUNTS)
    checks = {
        "single-shard serving reproduces simulate() exactly": all(
            fidelity_ok.values()
        ),
        # Hash-sharding k/S slots loses global victim scope; the convex
        # objective must degrade gracefully (small constant), not
        # collapse (margin generous: partition losses are instance-
        # dependent).
        f"{max_shard}-shard cost within 5x of unsharded (all policies)": all(
            served_cost[max_shard][p] <= 5.0 * served_cost[1][p] + 1e-9
            for p in SERVED
        ),
        "cost-aware beats cost-blind LRU through the server (S=1)": (
            served_cost[1]["alg-discrete"] <= served_cost[1]["lru"] + 1e-9
        ),
    }

    text = ascii_table(
        rows,
        title=(
            f"Served vs simulated on {trace.name} "
            f"(T={length}, k={k}, 4 tenants, 27:8:1:1 SLA spread)"
        ),
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "SERVED", "SHARD_COUNTS"]
