"""E17 — the telemetry layer: exactness, drift detection, and the
price of observation.

Not a paper claim — a systems validation of :mod:`repro.obs`.  An
instrumented reproduction is only trustworthy if the instruments are
(a) free enough to leave on and (b) incapable of perturbing the thing
they measure.  This experiment checks both, plus the layer's two
observability products:

1. **Heisenberg check** — ``simulate()`` and the serve path produce
   bit-identical hits/misses/per-tenant miss vectors with telemetry
   fully on (metrics + tracing + invariant monitor) and fully off.
   Instrumentation *reads*, never mutates.
2. **Exact exposition** — the Prometheus scrape of a live server
   reports per-tenant miss counters that exactly equal the offline
   ``simulate()`` ground truth, because the exposition reads the cost
   ledger through scrape-time collectors rather than shadow counters.
3. **Drift monitoring** — an :class:`~repro.obs.InvariantMonitor`
   sampling a real ALG-DISCRETE run raises no flags, while an injected
   budget violation (uniform subtraction on the live budget index) is
   caught on the next sample.
4. **Price of observation** — fast-engine throughput with an enabled
   bundle stays within a generous factor of the disabled run (the
   precise <3%/<5% bars are enforced by ``benchmarks`` and snapshotted
   to ``BENCH_PR3.json``; the check here is deliberately loose so the
   experiment is timing-robust on any machine).

Expected shape: all equivalences exact; monitor clean then flagged;
overhead factor well under the loose bound.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List

import numpy as np

from repro.analysis.report import ascii_table
from repro.core.cost_functions import MonomialCost
from repro.experiments.base import ExperimentOutput
from repro.obs import (
    InvariantMonitor,
    ListSink,
    Observability,
    parse_prometheus,
    sample_value,
    watch_simulation,
)
from repro.policies import POLICY_REGISTRY
from repro.serve import CacheServer
from repro.sim import simulate
from repro.workloads.builders import random_multi_tenant_trace

EXPERIMENT_ID = "e17"
TITLE = "Telemetry layer: exactness, drift detection, price of observation"

NUM_USERS = 4

#: Loose, machine-robust bound on enabled-vs-disabled throughput: the
#: real acceptance bars (<3%/<5%) live in the benchmark suite.
OVERHEAD_FACTOR_BOUND = 1.5


def _scrape_serve(trace, costs, k, obs):
    """Serve the whole trace in-process and return (outcome, scrape)."""

    async def go():
        server = CacheServer(
            "alg-discrete", k, trace.owners, costs, obs=obs,
            monitor_every=512,
        )
        await server.start()
        out = await server.request_many(trace.requests.tolist())
        text = server.prometheus_metrics()
        misses_by_user = server.ledger.misses_by_user()
        await server.stop()
        return out, text, misses_by_user

    return asyncio.run(go())


def _sim_rps(trace, k, costs, obs, reps):
    best = float("inf")
    for _ in range(reps):
        policy = POLICY_REGISTRY["lru"]()
        t0 = time.perf_counter()
        simulate(
            trace, policy, k, costs=costs, validate=False, engine="fast",
            obs=obs,
        )
        best = min(best, time.perf_counter() - t0)
    return trace.length / best


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    length = 6_000 if quick else 60_000
    k = 64
    reps = 2 if quick else 5
    trace = random_multi_tenant_trace(
        NUM_USERS, 100, length, skew=0.9, seed=seed, name="obs-mix"
    )
    costs = [MonomialCost(2) for _ in range(NUM_USERS)]

    rows: List[Dict[str, object]] = []

    # 1. Heisenberg check: full telemetry on vs. off, same results.
    ref = simulate(trace, POLICY_REGISTRY["alg-discrete"](), k, costs=costs)
    obs_on = Observability.enabled(
        sink=ListSink(), monitor=InvariantMonitor(costs)
    )
    traced = simulate(
        trace, POLICY_REGISTRY["alg-discrete"](), k, costs=costs, obs=obs_on
    )
    sim_identical = (
        traced.misses == ref.misses
        and np.array_equal(traced.user_misses, ref.user_misses)
    )
    out, scrape, served_misses = _scrape_serve(
        trace, costs, k,
        Observability.enabled(sink=ListSink(), monitor=InvariantMonitor(costs)),
    )
    serve_identical = out.misses == ref.misses and np.array_equal(
        served_misses, ref.user_misses
    )

    # 2. Exact exposition: the scrape matches simulate() per tenant.
    samples = parse_prometheus(scrape)
    scrape_exact = all(
        sample_value(samples, "serve_tenant_misses_total", tenant=str(i))
        == float(ref.user_misses[i])
        for i in range(NUM_USERS)
    ) and sample_value(samples, "serve_requests_total") == float(trace.length)
    for i in range(NUM_USERS):
        rows.append(
            {
                "section": "exposition",
                "tenant": i,
                "scraped_misses": int(
                    sample_value(
                        samples, "serve_tenant_misses_total", tenant=str(i)
                    )
                ),
                "simulated_misses": int(ref.user_misses[i]),
            }
        )

    # 3. Drift monitoring: clean live run, then an injected violation.
    policy = POLICY_REGISTRY["alg-discrete"]()
    watched = watch_simulation(trace, policy, k, costs, every=500)
    monitor = watched.monitor
    clean = monitor.ok and len(monitor.samples) > 0
    policy._index.subtract_from_all(1e9)  # inject: lost budget uplift
    monitor.sample(length + 1, watched.user_misses, policies=(policy,))
    caught = (not monitor.ok) and any(
        f.kind == "budget-nonneg" for f in monitor.flags
    )
    rows.append(
        {
            "section": "monitor",
            "samples": len(monitor.samples),
            "flags_clean_run": 0 if clean else len(monitor.flags),
            "flags_after_injection": len(monitor.flags),
            "caught_kind": monitor.flags[0].kind if monitor.flags else "-",
        }
    )

    # 4. Price of observation (loose in-experiment bound).
    off_rps = _sim_rps(trace, k, costs, Observability.disabled(), reps)
    on_rps = _sim_rps(
        trace, k, costs, Observability.enabled(sink=ListSink()), reps
    )
    factor = off_rps / on_rps if on_rps else float("inf")
    rows.append(
        {
            "section": "overhead",
            "disabled_rps": round(off_rps),
            "enabled_rps": round(on_rps),
            "slowdown_factor": round(factor, 3),
        }
    )

    checks = {
        "telemetry never changes simulate() results": sim_identical,
        "telemetry never changes served results": serve_identical,
        "Prometheus scrape matches simulate() per tenant exactly": scrape_exact,
        "invariant monitor clean on a real ALG-DISCRETE run": clean,
        "injected budget violation caught as budget-nonneg": caught,
        f"enabled telemetry slowdown under {OVERHEAD_FACTOR_BOUND}x (loose)": (
            factor < OVERHEAD_FACTOR_BOUND
        ),
    }

    columns: List[str] = []
    for row in rows:  # union, first-seen order (sections differ in keys)
        columns.extend(c for c in row if c not in columns)
    text = ascii_table(
        rows,
        columns=columns,
        title=(
            f"Telemetry validation on {trace.name} "
            f"(T={length}, k={k}, {NUM_USERS} tenants, monomial costs)"
        ),
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "OVERHEAD_FACTOR_BOUND"]
