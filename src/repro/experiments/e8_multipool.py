"""E8 — §5 future work: multiple memory pools with migration costs.

The paper closes by proposing multi-pool allocation (one pool per
physical server, users pinned to a pool, migration costs for moving
them).  This experiment runs the SQLVM-style workload over a two-pool
system under each assignment strategy — round-robin, balanced
bin-packing, random, and cost-aware epoch rebalancing — with every pool
internally running ALG-DISCRETE, across a sweep of migration costs.

Expected shape: balanced assignment beats round-robin/random; the
rebalancing strategy matches or beats static balanced when migrations
are cheap and converges to it (migrates less) as migration cost grows.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.report import ascii_table
from repro.experiments.base import ExperimentOutput
from repro.multipool import (
    AllInOneAssignment,
    BalancedPagesAssignment,
    CostAwareRebalancing,
    PoolSystem,
    RandomAssignment,
    RoundRobinAssignment,
    simulate_multipool,
)
from repro.util.rng import ensure_rng
from repro.workloads.sqlvm import sqlvm_scenario

EXPERIMENT_ID = "e8"
TITLE = "Future work (paper section 5): multi-pool assignment with migration costs"


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    num_scenarios = 3 if quick else 8
    length = 10_000 if quick else 40_000
    migration_costs = [0.0, 20.0, 1e6]
    rng = ensure_rng(seed)

    rows: List[Dict[str, object]] = []
    for s in range(num_scenarios):
        sub = int(rng.integers(0, 2**31))
        scenario, k = sqlvm_scenario(
            num_tenants=6, length=length, cache_fraction=0.2, seed=sub
        )
        caps = np.array([k // 2, k - k // 2])
        for mig in migration_costs:
            system = PoolSystem(capacities=caps, migration_cost=mig)
            strategies = {
                "round-robin": RoundRobinAssignment(),
                "balanced-pages": BalancedPagesAssignment(),
                "random-assignment": RandomAssignment(rng=sub),
                "all-in-one": AllInOneAssignment(),
                "cost-aware-rebalance": CostAwareRebalancing(
                    start=AllInOneAssignment()
                ),
            }
            for name, strat in strategies.items():
                res = simulate_multipool(
                    scenario.trace,
                    scenario.costs,
                    system,
                    strat,
                    # 20 rebalance opportunities regardless of scale: the
                    # repair speed is bounded by one migration per epoch.
                    epoch_length=max(1, length // 20),
                )
                rows.append(
                    {
                        "scenario": s,
                        "migration_cost": mig,
                        "strategy": name,
                        "total_cost": res.total_cost(scenario.costs),
                        "misses": int(res.user_misses.sum()),
                        "migrations": res.migrations,
                    }
                )

    def mean_cost(strategy: str, mig: float) -> float:
        vals = [
            r["total_cost"]
            for r in rows
            if r["strategy"] == strategy and r["migration_cost"] == mig
        ]
        return float(np.mean(vals))

    summary: List[Dict[str, object]] = []
    for mig in migration_costs:
        for strat in (
            "round-robin",
            "balanced-pages",
            "random-assignment",
            "all-in-one",
            "cost-aware-rebalance",
        ):
            summary.append(
                {
                    "migration_cost": mig,
                    "strategy": strat,
                    "mean_total_cost": mean_cost(strat, mig),
                    "mean_migrations": float(
                        np.mean(
                            [
                                r["migrations"]
                                for r in rows
                                if r["strategy"] == strat
                                and r["migration_cost"] == mig
                            ]
                        )
                    ),
                }
            )

    cheap = migration_costs[0]
    expensive = migration_costs[-1]

    def migrations_at(mig: float) -> float:
        return float(
            np.mean(
                [
                    r["migrations"]
                    for r in rows
                    if r["strategy"] == "cost-aware-rebalance"
                    and r["migration_cost"] == mig
                ]
            )
        )

    static_costs = {
        s: mean_cost(s, cheap)
        for s in ("round-robin", "balanced-pages", "random-assignment", "all-in-one")
    }
    checks = {
        # Assignment matters: piling every tenant on one server (half
        # the cluster idle) is the worst static choice.
        "all-in-one is the worst static assignment": static_costs["all-in-one"]
        >= max(v for s, v in static_costs.items() if s != "all-in-one"),
        # The rebalancer starts all-in-one; with cheap migrations it
        # must recover a large share of the wasted capacity.
        "rebalancing (cheap) improves >= 15% on its all-in-one start": mean_cost(
            "cost-aware-rebalance", cheap
        )
        <= 0.85 * mean_cost("all-in-one", cheap),
        "rebalancer migrates when cheap": migrations_at(cheap) > 0,
        "rebalancer stops migrating when prohibitively expensive": all(
            r["migrations"] == 0
            for r in rows
            if r["strategy"] == "cost-aware-rebalance"
            and r["migration_cost"] == expensive
        ),
        "migrations are non-increasing in migration cost": all(
            migrations_at(migration_costs[i]) >= migrations_at(migration_costs[i + 1])
            for i in range(len(migration_costs) - 1)
        ),
        "rebalancer equals its start when migration is impossible": abs(
            mean_cost("cost-aware-rebalance", expensive)
            - mean_cost("all-in-one", expensive)
        )
        <= 1e-6 * max(mean_cost("all-in-one", expensive), 1.0),
    }
    text = ascii_table(
        summary,
        title=f"Multi-pool strategies over {num_scenarios} scenarios (T={length}, 2 pools)",
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=summary,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
