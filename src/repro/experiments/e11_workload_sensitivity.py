"""E11 — workload sensitivity: where does cost-awareness matter?

Sweeps workload archetypes (uniform, zipf, hot/cold, scan, phased,
stack-distance locality) under fixed two-tenant convex costs (steep x^2
vs cheap linear) and reports, per archetype, the paper algorithm's cost
against the strongest cost-blind baselines (LRU, LFU, ARC, 2Q) —
together with workload characterisation (mean reuse distance, working
set size) from :mod:`repro.workloads.characterize` that explains the
outcome.

Expected shapes: cost-aware wins grow with cache contention (working
set vs k) and shrink when one tenant's locality dominates; ALG is never
behind the *cost-blind* field on IID (uniform/zipf) mixes where
allocation is the only lever.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.analysis.report import ascii_table
from repro.core.alg_discrete import AlgDiscrete
from repro.core.cost_functions import LinearCost, MonomialCost
from repro.experiments.base import ExperimentOutput
from repro.policies import ARCPolicy, LFUPolicy, LRUPolicy, TwoQueuePolicy
from repro.sim.engine import simulate
from repro.sim.metrics import total_cost
from repro.util.rng import ensure_rng
from repro.workloads.builders import TenantSpec, multi_tenant_trace
from repro.workloads.characterize import lru_stack_distances, working_set_profile
from repro.workloads.streams import (
    HotColdStream,
    PageStream,
    PhasedStream,
    ScanStream,
    StackDistanceStream,
    UniformStream,
    ZipfStream,
)

EXPERIMENT_ID = "e11"
TITLE = "Workload sensitivity: archetype sweep, cost-aware vs cost-blind"

PAGES = 80
ARCHETYPES: Dict[str, Callable[[], PageStream]] = {
    "uniform": lambda: UniformStream(PAGES),
    "zipf(0.9)": lambda: ZipfStream(PAGES, skew=0.9),
    "hot-cold": lambda: HotColdStream(PAGES, 0.15, 0.9),
    "scan": lambda: ScanStream(PAGES),
    "phased": lambda: PhasedStream(PAGES, working_set_size=12, phase_length=400),
    "stack-locality": lambda: StackDistanceStream(PAGES, theta=1.5, miss_rate=0.05),
}

BASELINES = {
    "lru": LRUPolicy,
    "lfu": LFUPolicy,
    "arc": ARCPolicy,
    "2q": TwoQueuePolicy,
}

IID_ARCHETYPES = ("uniform", "zipf(0.9)")


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    length = 12_000 if quick else 50_000
    replicates = 2 if quick else 6
    k = PAGES  # half of the 2*PAGES total page universe
    costs = [MonomialCost(2, scale=0.05), LinearCost(0.05)]
    rng = ensure_rng(seed)

    rows: List[Dict[str, object]] = []
    for arch, make_stream in ARCHETYPES.items():
        alg_costs, blind_costs = [], {name: [] for name in BASELINES}
        reuse, wss = [], []
        for _rep in range(replicates):
            sub = int(rng.integers(0, 2**31))
            tenants = [
                TenantSpec(make_stream(), weight=1.0, name="steep"),
                TenantSpec(make_stream(), weight=1.0, name="cheap"),
            ]
            trace = multi_tenant_trace(tenants, length, seed=sub, name=arch)
            r = simulate(trace, AlgDiscrete(), k, costs=costs)
            alg_costs.append(total_cost(r, costs))
            for name, factory in BASELINES.items():
                rb = simulate(trace, factory(), k, costs=costs)
                blind_costs[name].append(total_cost(rb, costs))
            d = lru_stack_distances(trace)
            finite = d[d >= 0]
            reuse.append(float(finite.mean()) if finite.size else np.nan)
            wss.append(working_set_profile(trace, window=1_000).mean_size)
        best_blind = min(float(np.mean(v)) for v in blind_costs.values())
        best_blind_name = min(
            blind_costs, key=lambda nm: float(np.mean(blind_costs[nm]))
        )
        rows.append(
            {
                "archetype": arch,
                "alg_cost": float(np.mean(alg_costs)),
                "best_blind": best_blind,
                "best_blind_policy": best_blind_name,
                "alg_vs_best_blind": float(np.mean(alg_costs)) / best_blind,
                "lru_cost": float(np.mean(blind_costs["lru"])),
                "mean_reuse_dist": float(np.mean(reuse)),
                "mean_ws_1k": float(np.mean(wss)),
            }
        )

    by_arch = {r["archetype"]: r for r in rows}
    checks = {
        "IID mixes (uniform/zipf): ALG beats every cost-blind baseline": all(
            by_arch[a]["alg_vs_best_blind"] <= 1.0 + 1e-9 for a in IID_ARCHETYPES
        ),
        "ALG beats plain LRU on every archetype": all(
            r["alg_cost"] <= r["lru_cost"] * (1 + 1e-9) for r in rows
        ),
        "no archetype puts ALG more than 2x behind the best cost-blind": all(
            r["alg_vs_best_blind"] <= 2.0 for r in rows
        ),
    }
    text = ascii_table(
        rows,
        title=(
            f"Two tenants (x^2 vs linear), k={k} of {2*PAGES} pages, "
            f"T={length}, {replicates} replicates"
        ),
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "ARCHETYPES"]
