"""Common experiment infrastructure.

Every experiment module exposes ``run(quick=True, seed=0) ->
ExperimentOutput``: rows (machine-readable), rendered text (tables /
ASCII charts), and named *shape checks* — the qualitative claims from
the paper that the measurement must exhibit (who wins, which way a
curve bends, whether a bound holds).  EXPERIMENTS.md records these
checks as the paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ExperimentOutput:
    """One experiment's results."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    text: str = ""
    shape_checks: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """All paper-shape checks passed."""
        return all(self.shape_checks.values())

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.text:
            lines.append(self.text)
        if self.shape_checks:
            lines.append("shape checks:")
            for name, passed in self.shape_checks.items():
                lines.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
        return "\n".join(lines)


__all__ = ["ExperimentOutput"]
