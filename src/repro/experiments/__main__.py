"""``python -m repro.experiments`` — run the experiment suite."""

from repro.experiments.cli import main

raise SystemExit(main())
