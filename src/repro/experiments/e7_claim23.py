"""E7 — Claim 2.3: the curvature inequality and its tightness.

Claim 2.3 bounds :math:`f'(\\sum x)\\sum x` by
:math:`\\alpha \\sum_j x_j f'(\\sum_{i\\le j} x_i)`.  We verify it on
random non-negative sequences for every cost family, and trace its
*tightness* (LHS/RHS) on equal-term sequences: for monomials
:math:`x^\\beta` the ratio is
:math:`n^{\\beta-1} / (\\beta \\sum_{j\\le n} j^{\\beta-1}/n)
\\to 1` as :math:`n \\to \\infty` — the claim (and hence
:math:`\\alpha = \\beta`) is asymptotically exact.

Expected shape: zero violations; tightness increases toward 1 with
sequence length for every β.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.report import ascii_series, ascii_table
from repro.core.claims import check_claim_2_3, claim_2_3_tightness_profile
from repro.core.cost_functions import (
    ExponentialCost,
    LinearCost,
    MonomialCost,
    PiecewiseLinearCost,
    PolynomialCost,
)
from repro.experiments.base import ExperimentOutput
from repro.util.rng import ensure_rng

EXPERIMENT_ID = "e7"
TITLE = "Claim 2.3: f'(sum x) sum x <= alpha * sum x_j f'(prefix_j)"


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    num_random = 200 if quick else 2000
    rng = ensure_rng(seed)

    families = {
        "linear(w=2)": LinearCost(2.0),
        "x^2": MonomialCost(2),
        "x^3": MonomialCost(3),
        "x + 0.5x^2": PolynomialCost([0.0, 1.0, 0.5]),
        "sla(5, 4, 0.5)": PiecewiseLinearCost.sla(5.0, 4.0, 0.5),
        "exp(0.1x)-1": ExponentialCost(rate=0.1),
    }

    violations = 0
    ineq6_violations = 0
    for _ in range(num_random):
        name = list(families)[int(rng.integers(0, len(families)))]
        f = families[name]
        length = int(rng.integers(1, 12))
        xs = rng.uniform(0.0, 5.0, size=length)
        alpha = f.alpha(x_max=float(xs.sum()) + 1.0)
        check = check_claim_2_3(f, xs, alpha=alpha)
        if not check.holds:
            violations += 1
        if not check.inequality6_holds:
            ineq6_violations += 1

    # Tightness profile for monomials on equal-term sequences.
    ns = [1, 2, 5, 10, 20, 50, 100]
    tight_rows: List[Dict[str, object]] = []
    series: Dict[str, List[float]] = {}
    for beta in (1, 2, 3):
        f = MonomialCost(beta)
        vals = [claim_2_3_tightness_profile(f, n) for n in ns]
        series[f"beta={beta}"] = vals
        tight_rows.append(
            {
                "beta": beta,
                **{f"n={n}": v for n, v in zip(ns, vals)},
                "monotone_to_1": all(
                    vals[i] <= vals[i + 1] + 1e-12 for i in range(len(vals) - 1)
                )
                and vals[-1] <= 1.0 + 1e-12,
            }
        )

    checks = {
        f"claim 2.3 holds on all {num_random} random sequences": violations == 0,
        "inequality (6) holds on all random sequences": ineq6_violations == 0,
        "tightness increases toward 1 with n for every beta": all(
            r["monotone_to_1"] for r in tight_rows
        ),
        "tightness at n=100 above 0.95 for every beta": all(
            r["n=100"] >= 0.95 for r in tight_rows
        ),
    }
    text = (
        ascii_table(tight_rows, title="Claim 2.3 tightness (LHS/RHS), equal-term sequences")
        + "\n\n"
        + ascii_series(
            [float(n) for n in ns], series, title="tightness vs sequence length"
        )
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=tight_rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
