"""E5 — the introduction's motivation: cost-aware beats cost-blind.

Two scenario families, both substitutes for the companion paper's
production DaaS workloads (DESIGN.md §5):

**Contention** — every tenant references a uniform working set, the
working sets jointly exceed the cache, and SLA penalty slopes are
spread ~50:1.  Within-tenant replacement choice is irrelevant by
construction; the only lever is *how much capacity each tenant gets* —
exactly the paper's problem.  Expected shape: the cost-aware policies
(ALG-DISCRETE, its smoothed practical variant, GreedyDual) each beat
every cost-blind baseline, typically by a large factor.

**Locality-rich (SQLVM-style)** — bursty heterogeneous tenant classes
with skewed/phased/scanning access patterns.  Here within-tenant
replacement quality matters too, and frequency-aware cost-blind
policies (LFU, LRU-K) can win on raw misses *and* cost; the paper
itself notes production deployments use *variants* of the algorithm
[14].  Expected (honest) shape: the smoothed variant improves on the
pure paper algorithm; the cost-aware family beats the structurally
cost-blind baselines the paper calls out (static partitioning, FIFO,
Random); frequency-based policies may remain ahead on this family.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.analysis.competitive import compare_policies
from repro.analysis.report import ascii_bars, ascii_table
from repro.core.alg_discrete import AlgDiscrete
from repro.experiments.base import ExperimentOutput
from repro.policies import (
    ClockPolicy,
    FIFOPolicy,
    GreedyDualPolicy,
    LFUPolicy,
    LRUKPolicy,
    LRUPolicy,
    RandomPolicy,
    StaticPartitionLRU,
)
from repro.util.rng import ensure_rng
from repro.workloads.sqlvm import contention_scenario, sqlvm_scenario

EXPERIMENT_ID = "e5"
TITLE = "Cost-aware (ALG-DISCRETE) vs cost-blind baselines on SLA workloads"

COST_AWARE = ("alg-discrete", "alg-smoothed", "greedydual")
COST_BLIND = ("lru", "lru-k", "clock", "lfu", "fifo", "static-lru", "random")
#: Offline-oracle comparator: MRC-driven static partitioning (UCP).  It
#: sees the whole trace, so it is reported separately, not as an online
#: competitor.
ORACLE = ("ucp",)


def _factories(seed: int, length: int = 12_000) -> Dict[str, Callable]:
    from repro.policies.ucp import UCPPolicy

    # The smoothing window must scale with the workload: the SLA
    # allowances grow linearly with trace length, and a window far
    # below the allowance re-introduces the myopia smoothing exists to
    # fix (measured: window 100 at T=60k is no better than pointwise,
    # window ~length/60 ~ the allowance scale cuts cost by ~25%).
    window = max(100, length // 60)
    return {
        "alg-discrete": AlgDiscrete,
        "alg-smoothed": lambda: AlgDiscrete(
            derivative_mode="smoothed", smoothing_window=window
        ),
        "greedydual": GreedyDualPolicy,
        "lru": LRUPolicy,
        "lru-k": LRUKPolicy,
        "clock": ClockPolicy,
        "lfu": LFUPolicy,
        "fifo": FIFOPolicy,
        "static-lru": StaticPartitionLRU,
        "random": lambda: RandomPolicy(rng=seed),
        "ucp": UCPPolicy,
    }


def _run_family(
    family: str, num_scenarios: int, length: int, rng: np.random.Generator
) -> Dict[str, List[float]]:
    agg: Dict[str, List[float]] = {}
    for _s in range(num_scenarios):
        sub = int(rng.integers(0, 2**31))
        if family == "contention":
            scenario, k = contention_scenario(
                num_tenants=4, pages_per_tenant=60, length=length, seed=sub
            )
        else:
            scenario, k = sqlvm_scenario(
                num_tenants=6, length=length, cache_fraction=0.2, seed=sub
            )
        # Names in _factories are stable; "alg-smoothed" instances name
        # themselves with their window, so re-key by factory name.
        for name, factory in _factories(sub, length).items():
            from repro.sim.engine import simulate
            from repro.sim.metrics import total_cost

            result = simulate(scenario.trace, factory(), k, costs=scenario.costs)
            agg.setdefault(name, []).append(total_cost(result, scenario.costs))
    return agg


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    num_scenarios = 3 if quick else 8
    length = 12_000 if quick else 60_000
    rng = ensure_rng(seed)

    results = {
        "contention": _run_family("contention", num_scenarios, length, rng),
        "sqlvm": _run_family("sqlvm", num_scenarios, length, rng),
    }

    rows: List[Dict[str, object]] = []
    means: Dict[str, Dict[str, float]] = {}
    for family, agg in results.items():
        means[family] = {name: float(np.mean(vals)) for name, vals in agg.items()}
        for name, m in sorted(means[family].items(), key=lambda kv: kv[1]):
            rows.append(
                {
                    "family": family,
                    "policy": name,
                    "cost_aware": name in COST_AWARE or name in ORACLE,
                    "oracle": name in ORACLE,
                    "mean_cost": m,
                    "max_cost": float(np.max(agg[name])),
                }
            )

    cm = means["contention"]
    sm = means["sqlvm"]
    best_blind_contention = min(cm[p] for p in COST_BLIND)
    checks = {
        "contention: every cost-aware policy beats every cost-blind baseline": all(
            cm[a] < best_blind_contention for a in COST_AWARE
        ),
        "contention: cost-aware advantage is >= 2x": min(cm[a] for a in COST_AWARE)
        * 2.0
        <= best_blind_contention,
        # The offline UCP oracle (whole-trace MRCs) bounds what ANY
        # static partitioning could do; the online algorithm must stay
        # within a small factor of it on the stationary family.
        "contention: online cost-aware within 3x of the offline UCP oracle": min(
            cm[a] for a in COST_AWARE
        )
        <= 3.0 * max(cm["ucp"], 1e-9),
        "sqlvm: smoothed variant improves on the pure paper algorithm": sm[
            "alg-smoothed"
        ]
        <= sm["alg-discrete"],
        "sqlvm: pure ALG beats static partitioning (the paper's strawman)": sm[
            "alg-discrete"
        ]
        <= sm["static-lru"],
        "sqlvm: smoothed ALG beats FIFO and Random": sm["alg-smoothed"]
        <= min(sm["fifo"], sm["random"]),
    }

    text = ""
    for family in ("contention", "sqlvm"):
        fam_rows = [r for r in rows if r["family"] == family]
        text += ascii_table(
            fam_rows,
            columns=["policy", "cost_aware", "oracle", "mean_cost", "max_cost"],
            title=f"{family}: mean total SLA cost over {num_scenarios} scenarios (T={length})",
        )
        text += "\n\n"
        text += ascii_bars(
            [r["policy"] for r in fam_rows],
            [r["mean_cost"] for r in fam_rows],
            title=f"{family}: mean SLA cost (lower is better)",
        )
        text += "\n\n"

    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text.rstrip(),
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "COST_AWARE", "COST_BLIND"]
