"""E18 — auditor exactness on the §4 lower-bound instance.

The streaming :class:`~repro.obs.audit.CompetitiveAuditor` is only
worth trusting if, on an instance whose competitive ratio is *known*,
its live gauge reads the same number the offline analysis computes.
Theorem 1.4's adversarial construction (paper §4) is exactly that
instance: *n* single-page tenants, cache :math:`k = n - 1`, costs
:math:`f_i(x) = x^{\\beta}`, and a request-the-missing-page adversary
forcing the online ratio to :math:`\\Omega((k/4)^{\\beta})`.

For each *n* this experiment drives an online policy with the
:class:`~repro.core.lower_bound.AdaptiveAdversary`, then streams the
recorded trace through :func:`~repro.obs.monitor.watch_simulation`
with an auditor attached, and checks:

1. **Exact online side** — the auditor's per-tenant miss counters
   equal the adversary run's ground truth exactly.
2. **Exact ratio** — the audited ratio equals the post-hoc
   :func:`~repro.core.lower_bound.measure_lower_bound` ratio to
   floating-point accuracy: the windowed Belady baseline recovers the
   §4 batched-offline schedule's cost on this instance.
3. **Trajectory** — the audited ratio exceeds the
   :func:`~repro.analysis.bounds.theorem_1_4_floor` value
   :math:`(n/4)^{\\beta}` and grows monotonically in *n*, reproducing
   the :math:`(k/4)^{\\beta}` trajectory live.
4. **Theorem 1.1 gauge** — ``bound_holds`` on every cell: even on the
   adversarial instance the online cost stays under
   :math:`\\sum_i f_i(\\alpha k \\hat b_i)`.

Expected shape: ratios match the offline measurement exactly, sit well
above the floor, and rise with *n*; every Theorem 1.1 gauge holds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.bounds import theorem_1_4_floor
from repro.analysis.report import ascii_table
from repro.core.lower_bound import (
    AdaptiveAdversary,
    lower_bound_costs,
    measure_lower_bound,
)
from repro.experiments.base import ExperimentOutput
from repro.obs import CompetitiveAuditor
from repro.obs.monitor import watch_simulation
from repro.policies import POLICY_REGISTRY

EXPERIMENT_ID = "e18"
TITLE = "Live audit of the §4 lower bound: streamed ratio vs. (k/4)^beta"

BETA = 2.0
POLICIES = ("lru", "alg-discrete")

#: Relative tolerance for "the streamed ratio equals the offline one".
RATIO_RTOL = 1e-9


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    del seed  # the adversarial instance is deterministic
    ns = (6, 9, 12) if quick else (6, 9, 12, 16, 20)
    steps_per_user = 40 if quick else 80

    rows: List[Dict[str, object]] = []
    exact_online = True
    exact_ratio = True
    above_floor = True
    monotone = True
    bound_held = True

    for policy_name in POLICIES:
        factory = POLICY_REGISTRY[policy_name]
        prev_ratio = 0.0
        for n in ns:
            k = n - 1
            T = steps_per_user * n
            costs = lower_bound_costs(n, BETA)

            adversarial = AdaptiveAdversary(n, T).run(factory(), costs=costs)
            auditor = CompetitiveAuditor(costs, k, window=2 * k)
            watch_simulation(
                adversarial.trace, factory(), k, costs, auditor=auditor
            )
            snap = auditor.snapshot()
            offline = measure_lower_bound(factory, n, BETA, T)
            floor = theorem_1_4_floor(n, BETA)

            live = [int(m) for m in auditor.online_total]
            truth = [int(m) for m in adversarial.online_result.user_misses]
            exact_online &= live == truth

            ratio = float(snap["audit_ratio"])
            drift = abs(ratio - offline.ratio) / max(offline.ratio, 1.0)
            exact_ratio &= drift <= RATIO_RTOL
            above_floor &= ratio >= floor
            monotone &= ratio > prev_ratio
            bound_held &= bool(snap["bound_holds"])
            prev_ratio = ratio

            rows.append(
                {
                    "policy": policy_name,
                    "n": n,
                    "k": k,
                    "T": T,
                    "audited_ratio": round(ratio, 3),
                    "offline_ratio": round(offline.ratio, 3),
                    "floor_(n/4)^b": round(floor, 3),
                    "ratio/floor": round(ratio / floor, 3),
                    "bound_holds": bool(snap["bound_holds"]),
                }
            )

    checks = {
        "auditor online misses equal adversary ground truth": exact_online,
        "audited ratio equals offline measurement (rtol 1e-9)": exact_ratio,
        "audited ratio >= (n/4)^beta floor on every cell": above_floor,
        "audited ratio grows monotonically with n": monotone,
        "Theorem 1.1 gauge holds on the adversarial instance": bound_held,
    }

    text = ascii_table(
        rows,
        title=(
            f"Streaming audit of the Theorem 1.4 instance "
            f"(beta={BETA:g}, T={steps_per_user}n, window=2k)"
        ),
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "BETA", "POLICIES"]
