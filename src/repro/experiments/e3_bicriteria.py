"""E3 — Theorem 1.3: the bi-criteria trade-off.

Fix the online cache at *k* and compare ALG-DISCRETE against the exact
offline optimum restricted to a **smaller** cache :math:`h \\le k`.
The paper's guarantee strengthens as *h* shrinks:

.. math:: \\sum_i f_i(a_i) \\le \\sum_i f_i\\bigl(\\alpha \\tfrac{k}{k-h+1}\\, b_i(h)\\bigr).

For each *h* we verify the bound and report the *measured effective
factor* — the smallest :math:`c` with
:math:`\\sum_i f_i(c\\, b_i) \\ge \\text{ALG}` (found by bisection) —
next to the theoretical :math:`\\alpha k/(k-h+1)`.

Expected shape: bound holds everywhere; both the theoretical and the
measured factor *decrease* as *h* decreases at fixed *k* (a weaker
adversary-side OPT is easier to compete with).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.bounds import theorem_1_3_bound
from repro.analysis.report import ascii_table
from repro.analysis.sweep import run_sweep
from repro.core.alg_discrete import AlgDiscrete
from repro.core.cost_functions import CostFunction, MonomialCost, combined_alpha
from repro.core.offline import exact_offline_opt
from repro.experiments.base import ExperimentOutput
from repro.sim.engine import simulate
from repro.sim.metrics import total_cost
from repro.workloads.builders import small_random_trace

EXPERIMENT_ID = "e3"
TITLE = "Theorem 1.3: bi-criteria guarantee vs OPT with cache h <= k"


def _effective_factor(
    alg_cost: float, opt_misses: np.ndarray, costs: Sequence[CostFunction]
) -> float:
    """Smallest c >= 0 with sum f_i(c * b_i) >= alg_cost (bisection)."""
    misses = np.asarray(opt_misses, dtype=float)

    def value(c: float) -> float:
        return float(sum(f.value(c * b) for f, b in zip(costs, misses)))

    if value(0.0) >= alg_cost:
        return 0.0
    hi = 1.0
    while value(hi) < alg_cost and hi < 1e9:
        hi *= 2.0
    lo = hi / 2.0 if hi > 1.0 else 0.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if value(mid) >= alg_cost:
            hi = mid
        else:
            lo = mid
    return hi


def _cell(h: int, k: int, beta: int, num_users: int, T: int, seed: int) -> Dict[str, object]:
    trace = small_random_trace(num_users, 3, T, seed=seed)
    costs = [MonomialCost(beta) for _ in range(num_users)]
    alpha = combined_alpha(costs)

    alg = simulate(trace, AlgDiscrete(), k, costs=costs)
    alg_cost = total_cost(alg, costs)
    opt_h = exact_offline_opt(trace, costs, h)
    bound = theorem_1_3_bound(costs, k, h, opt_h.user_misses, alpha=alpha)
    eff = _effective_factor(alg_cost, opt_h.user_misses, costs)
    return {
        "alg_cost": alg_cost,
        "opt_h_cost": opt_h.cost,
        "opt_exact": opt_h.optimal,
        "bound": bound,
        "bound_respected": alg_cost <= bound * (1 + 1e-9),
        "effective_factor": eff,
        "theoretical_factor": alpha * k / (k - h + 1),
    }


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    k = 4 if quick else 6
    hs = list(range(1, k + 1))
    beta = 2
    T = 24 if quick else 40
    replicates = 5 if quick else 15
    num_users = 3

    sweep = run_sweep(
        lambda h, seed: _cell(h, k, beta, num_users, T, seed),
        grid={"h": hs},
        replicates=replicates,
        base_seed=seed,
    )

    rows: List[Dict[str, object]] = []
    for h in hs:
        cell = [r for r in sweep.rows if r["h"] == h]
        rows.append(
            {
                "h": h,
                "k": k,
                "theoretical_factor": cell[0]["theoretical_factor"],
                "mean_effective_factor": float(
                    np.mean([r["effective_factor"] for r in cell])
                ),
                "max_effective_factor": float(
                    np.max([r["effective_factor"] for r in cell])
                ),
                "bound_respected_all": all(r["bound_respected"] for r in cell),
                "opt_exact_all": all(r["opt_exact"] for r in cell),
            }
        )

    theo = [r["theoretical_factor"] for r in rows]
    measured = [r["mean_effective_factor"] for r in rows]
    checks = {
        "Theorem 1.3 bound respected on every (h, instance)": all(
            r["bound_respected_all"] for r in rows
        ),
        "OPT(h) exact on every instance": all(r["opt_exact_all"] for r in rows),
        "theoretical factor decreases as h decreases": all(
            theo[i] <= theo[i + 1] + 1e-12 for i in range(len(theo) - 1)
        ),
        "measured factor at h=1 below measured factor at h=k": measured[0]
        <= measured[-1] + 1e-9,
    }
    text = ascii_table(
        rows,
        title=(
            f"Bi-criteria sweep: ALG(k={k}) vs exact OPT(h), beta={beta}, "
            f"{replicates} instances/cell, T={T}"
        ),
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
