"""E14 — scaling ablation: the two-level budget index vs naive Fig. 3.

DESIGN.md claims the lazy budget index makes a full-cache miss cost
``O(log k + log n)`` instead of the naive O(k).  This experiment
measures per-request time for both implementations across a sweep of
cache sizes on a churn-heavy workload (uniform over 4k pages, so most
requests miss and every miss pays the update cost), and verifies they
remain *behaviourally identical* while scaling apart.

Expected shapes: identical miss counts at every k; the naive
implementation's per-request time grows ~linearly in k while the
optimised one stays near-flat; the speedup at the largest k is large.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.analysis.report import ascii_series, ascii_table
from repro.core.alg_discrete import AlgDiscrete
from repro.core.alg_discrete_naive import NaiveAlgDiscrete
from repro.core.cost_functions import MonomialCost
from repro.experiments.base import ExperimentOutput
from repro.sim.engine import simulate
from repro.workloads.builders import random_multi_tenant_trace

EXPERIMENT_ID = "e14"
TITLE = "Scaling ablation: lazy budget index vs naive O(k) bookkeeping"


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    ks = [32, 128, 512] if quick else [32, 128, 512, 2048]
    length = 30_000 if quick else 120_000
    num_users = 8
    pages_per_user = 512
    trace = random_multi_tenant_trace(
        num_users, pages_per_user, length, skew=0.0, seed=seed
    )
    costs = [MonomialCost(2) for _ in range(num_users)]

    rows: List[Dict[str, object]] = []
    for k in ks:
        timings = {}
        misses = {}
        for name, factory in (("optimised", AlgDiscrete), ("naive", NaiveAlgDiscrete)):
            start = time.perf_counter()
            r = simulate(trace, factory(), k, costs=costs, validate=False)
            timings[name] = time.perf_counter() - start
            misses[name] = r.misses
        rows.append(
            {
                "k": k,
                "misses_equal": misses["optimised"] == misses["naive"],
                "optimised_us_per_req": 1e6 * timings["optimised"] / length,
                "naive_us_per_req": 1e6 * timings["naive"] / length,
                # Per-miss cost is the load-bearing metric: only misses
                # pay the Fig. 3 update, and the miss *rate* falls as k
                # grows, which would dilute a per-request comparison.
                "naive_us_per_miss": 1e6 * timings["naive"] / misses["naive"],
                "optimised_us_per_miss": 1e6
                * timings["optimised"]
                / misses["optimised"],
                "speedup": timings["naive"] / timings["optimised"],
            }
        )

    first, last = rows[0], rows[-1]
    k_growth = ks[-1] / ks[0]
    naive_growth = last["naive_us_per_miss"] / first["naive_us_per_miss"]
    opt_growth = last["optimised_us_per_miss"] / first["optimised_us_per_miss"]
    checks = {
        "identical miss counts at every k (behavioural equivalence)": all(
            r["misses_equal"] for r in rows
        ),
        "naive per-miss time grows super-logarithmically with k": naive_growth
        >= 0.25 * k_growth,
        "optimised per-miss time grows far slower than k": opt_growth
        <= 0.25 * k_growth,
        "speedup at the largest k exceeds 4x": last["speedup"] >= 4.0,
        "speedup increases with k": all(
            rows[i]["speedup"] < rows[i + 1]["speedup"] for i in range(len(rows) - 1)
        ),
    }
    text = (
        ascii_table(rows, title=f"uniform churn trace, T={length}, {num_users} users")
        + "\n\n"
        + ascii_series(
            [float(k) for k in ks],
            {
                "naive us/req": [r["naive_us_per_req"] for r in rows],
                "optimised us/req": [r["optimised_us_per_req"] for r in rows],
            },
            title="per-request cost vs cache size (log y)",
            logy=True,
        )
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
