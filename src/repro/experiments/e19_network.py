"""E19 — the price of distribution: a cache hierarchy vs one big box.

The paper prices a *single* cache of size :math:`k` at
:math:`\\sum_i f_i(a_i(\\sigma))`.  A CDN operator instead splits the
same capacity across a path of edge/mid/core caches; this experiment
measures what that split costs.  A ``DEPTH``-level path hierarchy
(equal per-level capacity, cheap inner links, an expensive origin
link) runs against a single cache of **equal total capacity** placed
at the edge, over Zipf traces of increasing skew and the §4 adaptive
adversary, under the two classical admission strategies:

* **LCE** (leave-copy-everywhere) replicates every fetched page at
  every level, so the effective capacity of the hierarchy shrinks
  toward one level's worth as the hot set concentrates — the price of
  distribution ``cost(hierarchy)/cost(single)`` starts above 1 and
  *grows with skew* (the hotter the head, the more capacity the
  duplicates burn).

* **LCD** (leave-copy-down) moves a page one level edge-ward per
  request, approximating an exclusive hierarchy: its price stays near
  1 (and can dip *below* — the level structure acts as a coarse
  frequency filter that protects the upper levels from one-hit
  wonders, cf. the reserves/marking line of work).

* On the **§4 adversary** (recorded against the single LRU box) every
  post-warmup request misses *everywhere* — an always-miss stream is
  indifferent to how capacity is arranged, so the price is exactly 1:
  distribution neither helps nor hurts the lower-bound instance.

End-to-end latency tells the same story from the client side: LCE's
duplicate-filled hierarchy serves fewer requests near the edge than
the single box does, while LCD matches it.

Expected shape: LCE price >= 1 everywhere and monotone in skew; LCD
price <= LCE price and LCD origin traffic <= LCE origin traffic on
every cell; adversary price == 1 under both; every ledger conserves.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import ascii_table
from repro.core.cost_functions import MonomialCost
from repro.core.lower_bound import AdaptiveAdversary, lower_bound_costs
from repro.experiments.base import ExperimentOutput
from repro.net import path_topology, simulate_network, single_node_topology
from repro.policies import POLICY_REGISTRY
from repro.workloads import zipf_trace

EXPERIMENT_ID = "e19"
TITLE = "Price of distribution: hierarchy cost & latency vs one big cache"

DEPTH = 3
LEVEL_K = 64
POLICY = "lru"
STRATEGIES = ("lce", "lcd")
BETA = 2.0


def _run_cell(topology, single, trace, costs, strategy):
    hier = simulate_network(topology, trace, POLICY, strategy=strategy)
    hier.check_conservation()
    return hier


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    skews = (0.6, 0.9, 1.2) if quick else (0.6, 0.8, 1.0, 1.2)
    T = 30_000 if quick else 120_000
    num_pages = 2_048 if quick else 8_192
    adv_n = 10 if quick else 16

    topology = path_topology(
        DEPTH, LEVEL_K, read_delay=1.0, origin_delay=10.0
    )
    one_way = topology.prefix_read_delay(0)[-1]
    single = single_node_topology(
        topology.total_cache_capacity, origin_delay=one_way
    )

    rows: List[Dict[str, object]] = []
    lce_price_ge_1 = True
    lce_price_monotone = True
    lcd_le_lce = True
    lcd_origin_le_lce = True
    lce_latency_ge_single = True
    adversary_price_1 = True

    prev_lce_price = 0.0
    for skew in skews:
        trace = zipf_trace(
            num_pages=num_pages, length=T, skew=skew, seed=seed
        )
        costs = [MonomialCost(BETA) for _ in range(trace.num_users)]
        base = simulate_network(single, trace, POLICY)
        base.check_conservation()
        base_cost = base.hierarchy_cost(costs)
        cell: Dict[str, float] = {}
        for strategy in STRATEGIES:
            hier = _run_cell(topology, single, trace, costs, strategy)
            price = hier.hierarchy_cost(costs) / base_cost
            cell[strategy] = price
            rows.append(
                {
                    "workload": f"zipf({skew:g})",
                    "strategy": strategy,
                    "hier_hit": round(hier.network_hit_ratio, 3),
                    "single_hit": round(base.network_hit_ratio, 3),
                    "hier_origin": hier.origin_total,
                    "single_origin": base.origin_total,
                    "price": round(price, 4),
                    "hier_lat": round(hier.latency.mean(), 2),
                    "single_lat": round(base.latency.mean(), 2),
                }
            )
            if strategy == "lce":
                lce_price_ge_1 &= price >= 1.0
                lce_price_monotone &= price > prev_lce_price
                prev_lce_price = price
                lce_latency_ge_single &= (
                    hier.latency.mean() >= base.latency.mean()
                )
                lce_origin = hier.origin_total
            else:
                lcd_le_lce &= price <= cell["lce"]
                lcd_origin_le_lce &= hier.origin_total <= lce_origin

    # The §4 adversary, recorded against the single LRU box of the same
    # total capacity, then replayed through both arrangements.
    adv_k = adv_n - 1
    adv = AdaptiveAdversary(adv_n, 40 * adv_n).run(
        POLICY_REGISTRY[POLICY]()
    )
    adv_costs = lower_bound_costs(adv_n, BETA)
    per_level = [adv_k // DEPTH] * DEPTH
    per_level[0] += adv_k - sum(per_level)
    adv_topology = path_topology(
        DEPTH, per_level, read_delay=1.0, origin_delay=10.0
    )
    adv_single = single_node_topology(
        adv_k, origin_delay=adv_topology.prefix_read_delay(0)[-1]
    )
    base = simulate_network(adv_single, adv.trace, POLICY)
    base.check_conservation()
    base_cost = base.hierarchy_cost(adv_costs)
    for strategy in STRATEGIES:
        hier = _run_cell(adv_topology, adv_single, adv.trace, adv_costs, strategy)
        price = hier.hierarchy_cost(adv_costs) / base_cost
        adversary_price_1 &= abs(price - 1.0) < 1e-12
        rows.append(
            {
                "workload": f"§4 adv(n={adv_n})",
                "strategy": strategy,
                "hier_hit": round(hier.network_hit_ratio, 3),
                "single_hit": round(base.network_hit_ratio, 3),
                "hier_origin": hier.origin_total,
                "single_origin": base.origin_total,
                "price": round(price, 4),
                "hier_lat": round(hier.latency.mean(), 2),
                "single_lat": round(base.latency.mean(), 2),
            }
        )

    checks = {
        "LCE price of distribution >= 1 on every Zipf cell": lce_price_ge_1,
        "LCE price grows monotonically with skew": lce_price_monotone,
        "LCD price <= LCE price on every cell": lcd_le_lce,
        "LCD origin traffic <= LCE origin traffic on every cell": (
            lcd_origin_le_lce
        ),
        "LCE mean latency >= single-box latency on every Zipf cell": (
            lce_latency_ge_single
        ),
        "§4 adversary is indifferent to distribution (price == 1)": (
            adversary_price_1
        ),
    }

    text = ascii_table(
        rows,
        title=(
            f"{DEPTH}-level path (k={LEVEL_K}/level) vs one "
            f"k={DEPTH * LEVEL_K} box, policy={POLICY}, beta={BETA:g}, T={T}"
        ),
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "DEPTH", "LEVEL_K", "STRATEGIES"]
