"""Command-line entry point: ``python -m repro.experiments [id ...]``.

Options::

    python -m repro.experiments            # run all, quick mode
    python -m repro.experiments e1 e4      # selected experiments
    python -m repro.experiments --full     # full-size sweeps
    python -m repro.experiments --csv out/ # also dump rows as CSV
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.report import write_csv
from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run the SPAA'15 convex-cost caching experiment suite.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument(
        "--full", action="store_true", help="full-size sweeps instead of quick mode"
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument(
        "--csv", metavar="DIR", default=None, help="also write per-experiment CSVs here"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for eid in sorted(EXPERIMENTS):
            _fn, title = EXPERIMENTS[eid]
            print(f"{eid}: {title}")
        return 0

    ids = args.experiments or sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.csv:
        os.makedirs(args.csv, exist_ok=True)

    all_ok = True
    for eid in ids:
        output = run_experiment(eid, quick=not args.full, seed=args.seed)
        print(output.render())
        print()
        if args.csv and output.rows:
            write_csv(os.path.join(args.csv, f"{eid}.csv"), output.rows)
        all_ok &= output.ok
    print("suite:", "ALL SHAPE CHECKS PASS" if all_ok else "SOME SHAPE CHECKS FAILED")
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
