"""E13 — context: randomization, oblivious vs adaptive adversaries.

Theorem 1.4 is stated for *deterministic* online algorithms.  This
experiment demonstrates why the qualifier matters — and why it doesn't
rescue randomized algorithms here:

* against an **oblivious** adversary (the classical fixed cyclic scan
  over `k+1` pages), deterministic LRU/FIFO/Marking miss on *every*
  request, while randomized marking achieves an `O(log k / k)` expected
  miss rate — the exponential deterministic/randomized separation from
  the paging literature (Fiat et al.);
* against the paper's **adaptive** adversary (which observes the actual
  cache and requests the missing page), randomized marking misses on
  every request just like the deterministic policies, so the
  `(n/4)^β` lower-bound floor still binds.

Expected shapes: randomized marking beats every deterministic policy by
a wide margin on the oblivious cycle, with miss rate within a constant
of `H_k/k`; on the adaptive instance its measured ratio still exceeds
the Theorem 1.4 floor.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.analysis.bounds import theorem_1_4_floor
from repro.analysis.report import ascii_table
from repro.core.lower_bound import measure_lower_bound
from repro.experiments.base import ExperimentOutput
from repro.policies import FIFOPolicy, LRUPolicy, MarkingPolicy
from repro.policies.marking import RandomizedMarkingPolicy
from repro.sim.engine import simulate
from repro.util.rng import ensure_rng
from repro.workloads.builders import adversarial_cycle_trace

EXPERIMENT_ID = "e13"
TITLE = "Randomization helps against oblivious adversaries, not adaptive ones"


def _harmonic(k: int) -> float:
    return sum(1.0 / i for i in range(1, k + 1))


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    ks = [4, 8, 16] if quick else [4, 8, 16, 32, 64]
    cycles = 60 if quick else 200
    replicates = 5 if quick else 20
    rng = ensure_rng(seed)

    rows: List[Dict[str, object]] = []
    for k in ks:
        trace = adversarial_cycle_trace(k=k, length=cycles * (k + 1))
        det = {
            name: simulate(trace, factory(), k).miss_ratio
            for name, factory in (
                ("lru", LRUPolicy),
                ("fifo", FIFOPolicy),
                ("marking", MarkingPolicy),
            )
        }
        rand_ratios = []
        for _ in range(replicates):
            sub = int(rng.integers(0, 2**31))
            r = simulate(trace, RandomizedMarkingPolicy(rng=sub), k)
            rand_ratios.append(r.miss_ratio)
        rand_mean = float(np.mean(rand_ratios))
        rows.append(
            {
                "k": k,
                "lru_miss_rate": det["lru"],
                "marking_miss_rate": det["marking"],
                "rand_marking_miss_rate": rand_mean,
                "H_k/k": _harmonic(k) / k,
                "speedup_vs_lru": det["lru"] / rand_mean,
            }
        )

    # Adaptive side: the floor still binds for the randomized policy.
    n, beta = (9, 2)
    adaptive = measure_lower_bound(
        lambda: RandomizedMarkingPolicy(rng=int(rng.integers(0, 2**31))),
        n=n,
        beta=beta,
        T=400 * n,
    )

    checks = {
        "deterministic policies miss every request on the oblivious cycle": all(
            r["lru_miss_rate"] == 1.0 and r["marking_miss_rate"] == 1.0 for r in rows
        ),
        # The theoretical ceiling of the speedup is k/H_k (miss rate
        # H_k/k vs 1); require at least 80% of it at every k.
        "randomized speedup within 80% of the k/H_k theory ceiling": all(
            r["speedup_vs_lru"] >= 0.8 * (r["k"] / (r["H_k/k"] * r["k"]))
            for r in rows
        ),
        "randomized speedup grows with k": all(
            rows[i]["speedup_vs_lru"] < rows[i + 1]["speedup_vs_lru"]
            for i in range(len(rows) - 1)
        ),
        "randomized miss rate within 3x of the H_k/k theory line": all(
            r["rand_marking_miss_rate"] <= 3.0 * r["H_k/k"] for r in rows
        ),
        "adaptive adversary defeats randomization (misses every request)": int(
            adaptive.online_misses.sum()
        )
        == 400 * n,
        "adaptive ratio still exceeds the (n/4)^beta floor": adaptive.ratio
        >= theorem_1_4_floor(n, beta),
    }
    text = (
        ascii_table(
            rows,
            title=f"Oblivious cyclic scan over k+1 pages ({cycles} cycles, "
            f"{replicates} randomized replicates)",
        )
        + "\n\n"
        + f"adaptive instance (n={n}, beta={beta}): randomized marking ratio "
        f"{adaptive.ratio:.2f} >= floor {theorem_1_4_floor(n, beta):.2f}"
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
