"""Experiment suite (see DESIGN.md section 3 for the claim index).

The paper is a theory-only extended abstract; each experiment here
empirically regenerates one of its stated results or probes a design
choice: E1 Corollary 1.2, E2 Lemma 2.1, E3 Theorem 1.3, E4 Theorem
1.4, E5 the introduction's cost-aware-vs-cost-blind motivation, E6 the
alpha=1 linear reduction, E7 Claim 2.3, E8 the section-5 multi-pool
future work, E9 throughput, E10 derivative-mode ablation, E11 workload
sensitivity, E12 adversarial instance search, E13 randomization vs
oblivious/adaptive adversaries, E14 the budget-index scaling ablation,
E15 the BBN fractional LP lineage, E16 serving, E17 observability
overhead, E18 the live lower-bound audit, E19 the price of
distribution across a cache hierarchy.
"""

from repro.experiments.base import ExperimentOutput

__all__ = ["ExperimentOutput", "EXPERIMENTS", "run_experiment", "run_all"]


def __getattr__(name):
    # Lazy to avoid importing every experiment module (and its sweeps)
    # on `import repro`.
    if name in ("EXPERIMENTS", "run_experiment", "run_all"):
        from repro.experiments import registry

        return getattr(registry, name)
    raise AttributeError(name)
