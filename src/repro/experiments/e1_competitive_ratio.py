"""E1 — Corollary 1.2: :math:`\\beta^\\beta k^\\beta`-competitiveness.

For monomial costs :math:`f_i(x) = x^\\beta`, sweep cache size *k* and
degree *β* over small random multi-tenant instances where the offline
optimum is computed **exactly** (branch-and-bound), and verify the
paper's miss-vector bound

.. math:: \\sum_i f_i(a_i) \\le \\sum_i f_i(\\beta k\\, b_i) = (\\beta k)^\\beta \\sum_i f_i(b_i)

on every instance, reporting the worst measured cost ratio per
``(k, β)`` cell next to the theoretical :math:`\\beta^\\beta k^\\beta`
ceiling.

Expected shape: every instance respects the bound; measured worst
ratios grow with both *k* and *β* but sit far below the ceiling
(the guarantee is worst-case; random instances are benign).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.bounds import corollary_1_2_factor, theorem_1_1_bound
from repro.analysis.competitive import measure_competitive
from repro.analysis.report import ascii_table
from repro.analysis.sweep import run_sweep
from repro.core.cost_functions import MonomialCost
from repro.experiments.base import ExperimentOutput
from repro.workloads.builders import small_random_trace

EXPERIMENT_ID = "e1"
TITLE = "Corollary 1.2: monomial costs are (beta^beta k^beta)-competitive"


def _cell(k: int, beta: int, num_users: int, T: int, seed: int) -> Dict[str, object]:
    pages_per_user = max(2, (2 * k) // num_users + 1)
    trace = small_random_trace(num_users, pages_per_user, T, seed=seed)
    costs = [MonomialCost(beta) for _ in range(num_users)]
    m = measure_competitive(trace, costs, k, opt_method="exact")
    return {
        "ratio": m.ratio,
        "alg_cost": m.alg_cost,
        "opt_cost": m.opt_cost,
        "opt_exact": m.opt_is_exact,
        "bound_respected": bool(m.bound_respected),
    }


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    ks = [2, 3, 4] if quick else [2, 3, 4, 5, 6]
    betas = [1, 2, 3]
    T = 24 if quick else 40
    replicates = 5 if quick else 20
    num_users = 3

    sweep = run_sweep(
        lambda k, beta, seed: _cell(k, beta, num_users, T, seed),
        grid={"k": ks, "beta": betas},
        replicates=replicates,
        base_seed=seed,
    )

    rows = []
    all_exact = all(r["opt_exact"] for r in sweep.rows)
    all_bounded = all(r["bound_respected"] for r in sweep.rows)
    for k in ks:
        for beta in betas:
            cell = [r for r in sweep.rows if r["k"] == k and r["beta"] == beta]
            worst = max(r["ratio"] for r in cell)
            mean = float(np.mean([r["ratio"] for r in cell]))
            rows.append(
                {
                    "k": k,
                    "beta": beta,
                    "worst_ratio": worst,
                    "mean_ratio": mean,
                    "bound_beta^beta*k^beta": corollary_1_2_factor(beta, k),
                    "within_bound": worst <= corollary_1_2_factor(beta, k),
                }
            )

    # Monotonicity of the worst ratio in k and beta (paper shape: the
    # guarantee degrades with both).  Averaged across the grid rather
    # than cell-by-cell (randomness), so compare marginal means.
    def marginal(axis: str, val) -> float:
        pts = [r["worst_ratio"] for r in rows if r[axis] == val]
        return float(np.mean(pts))

    grows_with_beta = marginal("beta", betas[-1]) >= marginal("beta", betas[0])

    checks = {
        "every instance respects the Theorem 1.1 miss-vector bound": all_bounded,
        "offline OPT solved exactly on all instances": all_exact,
        "worst measured ratio is below beta^beta*k^beta in every cell": all(
            r["within_bound"] for r in rows
        ),
        "worst ratio grows with beta (marginal means)": grows_with_beta,
    }
    text = ascii_table(
        rows,
        columns=[
            "k",
            "beta",
            "worst_ratio",
            "mean_ratio",
            "bound_beta^beta*k^beta",
            "within_bound",
        ],
        title=f"ALG-DISCRETE vs exact OPT ({replicates} instances/cell, T={T}, {num_users} users)",
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
