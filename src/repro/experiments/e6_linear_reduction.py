"""E6 — the :math:`\\alpha = 1` reduction: linear costs = weighted caching.

The paper observes that with linear :math:`f_i` (each miss of user *i*
costs :math:`w_i`), :math:`\\alpha = 1` and Theorem 1.1 recovers the
optimal deterministic *k*-competitiveness of weighted caching.  This
experiment runs ALG-DISCRETE with linear costs on weighted multi-tenant
traces and measures:

* its cost ratio against the exact LP optimum of (CP) (for linear
  costs the fractional program is an LP solved exactly by HiGHS — a
  certified lower bound on OPT), checking ratio :math:`\\le k`;
* GreedyDual (Young's classical weighted-caching algorithm) on the
  same instances, as the reference implementation of the same
  guarantee;
* for unit weights, agreement of cost ratios with classical paging
  behaviour (LRU ratio also :math:`\\le k`).

Expected shape: ALG ratio ≤ k everywhere; ALG and GreedyDual costs are
close (same primal-dual family); both beat cost-blind LRU on skewed
weights.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.report import ascii_table
from repro.analysis.sweep import run_sweep
from repro.core.alg_discrete import AlgDiscrete
from repro.core.convex_program import fractional_opt_lower_bound
from repro.core.cost_functions import LinearCost
from repro.experiments.base import ExperimentOutput
from repro.policies.greedydual import GreedyDualPolicy
from repro.policies.lru import LRUPolicy
from repro.sim.engine import simulate
from repro.sim.metrics import total_cost
from repro.util.rng import ensure_rng
from repro.workloads.builders import random_multi_tenant_trace

EXPERIMENT_ID = "e6"
TITLE = "alpha = 1: linear costs reduce to k-competitive weighted caching"


def _cell(k: int, weight_spread: float, T: int, seed: int) -> Dict[str, object]:
    rng = ensure_rng(seed)
    n = 4
    trace = random_multi_tenant_trace(
        num_users=n, pages_per_user=3, length=T, seed=seed
    )
    weights = np.exp(rng.uniform(0.0, np.log(max(weight_spread, 1.0 + 1e-9)), size=n))
    costs = [LinearCost(float(w)) for w in weights]

    lp_opt = fractional_opt_lower_bound(trace, costs, k)
    out: Dict[str, object] = {"lp_opt": lp_opt}
    for name, factory in (
        ("alg", AlgDiscrete),
        ("greedydual", GreedyDualPolicy),
        ("lru", LRUPolicy),
    ):
        res = simulate(trace, factory(), k, costs=costs)
        cost = total_cost(res, costs)
        out[f"{name}_cost"] = cost
        out[f"{name}_ratio"] = cost / lp_opt if lp_opt > 0 else np.nan
    return out


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    ks = [3, 5] if quick else [3, 5, 8]
    spreads = [1.0, 10.0] if quick else [1.0, 10.0, 100.0]
    T = 150 if quick else 400
    replicates = 4 if quick else 12

    sweep = run_sweep(
        lambda k, weight_spread, seed: _cell(k, weight_spread, T, seed),
        grid={"k": ks, "weight_spread": spreads},
        replicates=replicates,
        base_seed=seed,
    )

    rows: List[Dict[str, object]] = []
    for k in ks:
        for spread in spreads:
            cell = [
                r for r in sweep.rows if r["k"] == k and r["weight_spread"] == spread
            ]
            rows.append(
                {
                    "k": k,
                    "weight_spread": spread,
                    "alg_ratio_max": float(np.max([r["alg_ratio"] for r in cell])),
                    "greedydual_ratio_max": float(
                        np.max([r["greedydual_ratio"] for r in cell])
                    ),
                    "lru_ratio_max": float(np.max([r["lru_ratio"] for r in cell])),
                    "alg_vs_gd_mean": float(
                        np.mean(
                            [r["alg_cost"] / r["greedydual_cost"] for r in cell]
                        )
                    ),
                }
            )

    skewed = [r for r in rows if r["weight_spread"] > 1.0]
    checks = {
        "ALG ratio <= k on every instance (vs certified LP lower bound)": all(
            r["alg_ratio"] <= r["k"] * (1 + 1e-6) for r in sweep.rows
        ),
        "GreedyDual ratio <= k on every instance": all(
            r["greedydual_ratio"] <= r["k"] * (1 + 1e-6) for r in sweep.rows
        ),
        "ALG within 25% of GreedyDual on average (same primal-dual family)": all(
            0.75 <= r["alg_vs_gd_mean"] <= 1.25 for r in rows
        ),
        "cost-aware policies beat LRU on skewed weights (max ratios)": all(
            min(r["alg_ratio_max"], r["greedydual_ratio_max"]) <= r["lru_ratio_max"] + 1e-9
            for r in skewed
        ),
    }
    text = ascii_table(
        rows,
        title=(
            f"Linear-cost reduction: ratios vs exact LP lower bound "
            f"({replicates} instances/cell, T={T})"
        ),
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
