"""E12 — adversarial search: how bad can instances actually get?

E1 samples random instances; this experiment *optimises* for bad ones,
hill-climbing request sequences to maximise ALG / exact-OPT.  Three
questions:

* does the Theorem 1.1 bound survive adversarial instance search (a far
  stronger test than random sampling)?
* how much worse are searched instances than random worst cases?
* do searched ratios scale with `k` the way the `Ω(k)` lower bound says
  they must (Theorem 1.4 guarantees *some* instance at ratio `≈ k/4`
  per unit β; search should find ratios well above random)?

Expected shapes: bound respected on every searched instance; searched
worst ≥ random worst per cell; searched ratio grows with k.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.bounds import corollary_1_2_factor
from repro.analysis.competitive import measure_competitive
from repro.analysis.report import ascii_table
from repro.analysis.worst_case import search_worst_ratio
from repro.core.cost_functions import MonomialCost
from repro.experiments.base import ExperimentOutput
from repro.util.rng import ensure_rng
from repro.workloads.builders import small_random_trace

EXPERIMENT_ID = "e12"
TITLE = "Adversarial instance search: stress-testing the Theorem 1.1 bound"


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    ks = [2, 3] if quick else [2, 3, 4]
    betas = [1, 2]
    T = 20 if quick else 28
    iterations = 150 if quick else 600
    restarts = 2 if quick else 4
    random_samples = 20 if quick else 100
    num_users = 3
    rng = ensure_rng(seed)

    rows: List[Dict[str, object]] = []
    for k in ks:
        pages_per_user = 2
        owners = np.repeat(np.arange(num_users), pages_per_user)
        for beta in betas:
            costs = [MonomialCost(beta) for _ in range(num_users)]
            # Random-instance worst over the same skeleton.
            random_worst = 0.0
            for _ in range(random_samples):
                sub = int(rng.integers(0, 2**31))
                trace = small_random_trace(num_users, pages_per_user, T, seed=sub)
                m = measure_competitive(trace, costs, k, opt_method="exact")
                random_worst = max(random_worst, m.ratio)
            # Searched worst.
            searched = search_worst_ratio(
                costs,
                owners,
                k,
                T=T,
                iterations=iterations,
                restarts=restarts,
                seed=int(rng.integers(0, 2**31)),
            )
            rows.append(
                {
                    "k": k,
                    "beta": beta,
                    "random_worst": random_worst,
                    "searched_worst": searched.ratio,
                    "search_gain": searched.ratio / random_worst
                    if random_worst > 0
                    else np.nan,
                    "bound": corollary_1_2_factor(beta, k),
                    "bound_respected": searched.bound_respected,
                    "evaluations": searched.evaluations,
                }
            )

    def searched_at(k: int, beta: int) -> float:
        return next(
            r["searched_worst"] for r in rows if r["k"] == k and r["beta"] == beta
        )

    checks = {
        "Theorem 1.1 bound respected on every searched instance": all(
            r["bound_respected"] for r in rows
        ),
        "search finds instances at least as bad as random sampling": all(
            r["searched_worst"] >= r["random_worst"] - 1e-9 for r in rows
        ),
        "searched ratio grows with k (both betas)": all(
            searched_at(ks[i], b) <= searched_at(ks[i + 1], b) + 1e-9
            for b in betas
            for i in range(len(ks) - 1)
        ),
        "searched worst stays below the beta^beta*k^beta ceiling": all(
            r["searched_worst"] <= r["bound"] for r in rows
        ),
    }
    text = ascii_table(
        rows,
        title=(
            f"Hill-climbed instances (T={T}, {iterations} iters x {restarts} "
            f"restarts) vs {random_samples} random samples, exact OPT"
        ),
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
