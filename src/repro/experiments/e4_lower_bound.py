"""E4 — Theorem 1.4: the :math:`\\Omega(k)^\\beta` lower bound.

Runs the §4 adversarial instance (n single-page users, cache
:math:`k = n-1`, :math:`f(x) = x^\\beta`) against several deterministic
online policies — the paper's ALG-DISCRETE, LRU, FIFO, Marking — and
compares each to the §4 batched offline strategy.

Expected shape: **every** online policy's cost is at least
:math:`\\approx (n/4)^\\beta` times the offline cost (the theorem holds
for *any* deterministic online algorithm), and the measured ratio grows
with *n* at fixed *β* and with *β* at fixed *n*.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.analysis.bounds import theorem_1_4_floor
from repro.analysis.report import ascii_series, ascii_table
from repro.core.alg_discrete import AlgDiscrete
from repro.core.lower_bound import measure_lower_bound
from repro.experiments.base import ExperimentOutput
from repro.policies.fifo import FIFOPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.marking import MarkingPolicy
from repro.sim.policy import EvictionPolicy

EXPERIMENT_ID = "e4"
TITLE = "Theorem 1.4: adversarial lower bound Omega(k)^beta for any online policy"

POLICIES: Dict[str, Callable[[], EvictionPolicy]] = {
    "alg-discrete": AlgDiscrete,
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "marking": MarkingPolicy,
}


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    ns = [5, 9, 13] if quick else [5, 9, 13, 17, 21]
    betas = [1, 2] if quick else [1, 2, 3]
    T_factor = 400 if quick else 1500

    rows: List[Dict[str, object]] = []
    for n in ns:
        T = T_factor * n
        for beta in betas:
            floor = theorem_1_4_floor(n, beta)
            for name, factory in POLICIES.items():
                m = measure_lower_bound(factory, n=n, beta=beta, T=T)
                rows.append(
                    {
                        "policy": name,
                        "n": n,
                        "k": n - 1,
                        "beta": beta,
                        "T": T,
                        "online_cost": m.online_cost,
                        "offline_cost": m.offline_cost,
                        "ratio": m.ratio,
                        "floor_(n/4)^beta": floor,
                        "exceeds_floor": m.ratio >= floor,
                    }
                )

    checks: Dict[str, bool] = {
        "every policy's ratio exceeds the (n/4)^beta floor": all(
            r["exceeds_floor"] for r in rows
        ),
    }
    # Growth in n at fixed beta, per policy.
    for name in POLICIES:
        for beta in betas:
            series = [
                r["ratio"] for r in rows if r["policy"] == name and r["beta"] == beta
            ]
            checks[f"{name}: ratio grows with n (beta={beta})"] = all(
                series[i] < series[i + 1] for i in range(len(series) - 1)
            )

    chart = ascii_series(
        xs=[r["n"] for r in rows if r["policy"] == "lru" and r["beta"] == betas[-1]],
        series={
            **{
                name: [
                    r["ratio"]
                    for r in rows
                    if r["policy"] == name and r["beta"] == betas[-1]
                ]
                for name in POLICIES
            },
            "floor": [
                r["floor_(n/4)^beta"]
                for r in rows
                if r["policy"] == "lru" and r["beta"] == betas[-1]
            ],
        },
        title=f"ratio vs n at beta={betas[-1]}",
        logy=True,
    )
    text = (
        ascii_table(
            rows,
            columns=[
                "policy",
                "n",
                "beta",
                "online_cost",
                "offline_cost",
                "ratio",
                "floor_(n/4)^beta",
                "exceeds_floor",
            ],
            title="Adversarial instance: online vs batched offline",
        )
        + "\n\n"
        + chart
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "POLICIES"]
