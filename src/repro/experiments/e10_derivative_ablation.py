"""E10 — ablation: the algorithm's gradient notion (paper §2.5).

DESIGN.md calls out the derivative-mode design choice for ablation:
``'continuous'`` (the analysed Fig. 3 rule), ``'marginal'`` (the §2.5
discrete-derivative extension) and ``'smoothed'`` (window-averaged
marginal, the practical variant) across smoothing windows, on both E5
scenario families and on smooth monomial costs.

Expected shapes:

* on smooth monomial costs the three modes behave near-identically
  (`f'(m+1)` vs `f(m+1)-f(m)` differ by O(1) curvature terms);
* on SLA costs with free-miss allowances, smoothing helps: cost is
  non-increasing in window size up to the allowance scale, with
  window 1 ≈ marginal mode;
* the guarantee-carrying continuous mode is never catastrophically
  behind the best variant on the contention family (same allocation
  logic, different myopia).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.report import ascii_table
from repro.core.alg_discrete import AlgDiscrete
from repro.core.cost_functions import MonomialCost
from repro.experiments.base import ExperimentOutput
from repro.sim.engine import simulate
from repro.sim.metrics import total_cost
from repro.util.rng import ensure_rng
from repro.workloads.builders import random_multi_tenant_trace
from repro.workloads.sqlvm import contention_scenario, sqlvm_scenario

EXPERIMENT_ID = "e10"
TITLE = "Ablation: derivative mode (continuous / marginal / smoothed-W)"

WINDOWS = (1, 10, 100, 1000)


def _variants():
    out = {
        "continuous": lambda: AlgDiscrete(derivative_mode="continuous"),
        "marginal": lambda: AlgDiscrete(derivative_mode="marginal"),
    }
    for w in WINDOWS:
        out[f"smoothed-{w}"] = (
            lambda w=w: AlgDiscrete(derivative_mode="smoothed", smoothing_window=w)
        )
    return out


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    num_scenarios = 3 if quick else 8
    length = 10_000 if quick else 40_000
    rng = ensure_rng(seed)

    families: Dict[str, Dict[str, List[float]]] = {}

    for s in range(num_scenarios):
        sub = int(rng.integers(0, 2**31))
        instances = {}
        sc, k = contention_scenario(num_tenants=4, length=length, seed=sub)
        instances["contention-sla"] = (sc.trace, sc.costs, k)
        sc2, k2 = sqlvm_scenario(num_tenants=6, length=length, seed=sub)
        instances["sqlvm-sla"] = (sc2.trace, sc2.costs, k2)
        mono_trace = random_multi_tenant_trace(4, 30, length, seed=sub)
        instances["monomial-x^2"] = (mono_trace, [MonomialCost(2)] * 4, 40)

        for fam, (trace, costs, k_) in instances.items():
            agg = families.setdefault(fam, {})
            for name, factory in _variants().items():
                r = simulate(trace, factory(), k_, costs=costs)
                agg.setdefault(name, []).append(total_cost(r, costs))

    rows: List[Dict[str, object]] = []
    means: Dict[str, Dict[str, float]] = {}
    for fam, agg in families.items():
        means[fam] = {name: float(np.mean(v)) for name, v in agg.items()}
        for name, m in means[fam].items():
            rows.append({"family": fam, "variant": name, "mean_cost": m})

    mono = means["monomial-x^2"]
    cont_sla = means["contention-sla"]
    spread_mono = max(mono.values()) / min(mono.values())
    checks = {
        "monomial costs: all modes within 5% of each other": spread_mono <= 1.05,
        "smoothed-1 matches marginal mode": abs(
            mono["smoothed-1"] - mono["marginal"]
        )
        <= 1e-9 * max(mono["marginal"], 1.0)
        and abs(cont_sla["smoothed-1"] - cont_sla["marginal"])
        <= 1e-9 * max(cont_sla["marginal"], 1.0),
        "SLA (sqlvm): best smoothed window beats the pointwise derivative": min(
            means["sqlvm-sla"][f"smoothed-{w}"] for w in WINDOWS
        )
        <= means["sqlvm-sla"]["continuous"],
        "contention: continuous mode within 2x of the best variant": cont_sla[
            "continuous"
        ]
        <= 2.0 * min(cont_sla.values()),
    }

    text = ""
    for fam in families:
        fam_rows = sorted(
            (r for r in rows if r["family"] == fam), key=lambda r: r["mean_cost"]
        )
        text += ascii_table(
            fam_rows,
            columns=["variant", "mean_cost"],
            title=f"{fam}: mean cost over {num_scenarios} scenarios (T={length})",
        )
        text += "\n\n"

    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text.rstrip(),
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "WINDOWS"]
