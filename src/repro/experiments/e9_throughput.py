"""E9 — engineering baseline: simulator throughput per policy.

Not a paper claim — an implementation health metric: requests/second
for each policy on a common Zipf trace, confirming the budget algorithm
is implementable at practical rates (the paper's ALG-DISCRETE does
O(log k) amortised work per request, plus O(siblings) on evictions).

Since the fast-path engine landed, the experiment also times each
policy under both engines on a hit-heavy trace (Zipf skew 2.0 at a
large cache, ~0.6% misses): the regime where vectorized hit-run
scanning and batched ``on_hit_batch`` delivery pay off.

Expected shape: every policy clears a sanity floor; ALG-DISCRETE is
within an order of magnitude of LRU; the fast engine beats the
reference loop on the hit-heavy trace.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.analysis.report import ascii_bars, ascii_table
from repro.core.alg_discrete import AlgDiscrete
from repro.core.cost_functions import MonomialCost
from repro.experiments.base import ExperimentOutput
from repro.policies import POLICY_REGISTRY
from repro.sim.engine import simulate
from repro.workloads.builders import zipf_trace

EXPERIMENT_ID = "e9"
TITLE = "Simulator throughput (requests/second) per policy"

#: Policies timed here (belady/alg-cont excluded: offline / ledger-heavy).
TIMED = (
    "alg-discrete",
    "lru",
    "fifo",
    "clock",
    "lfu",
    "lru-k",
    "marking",
    "greedydual",
    "random",
    "static-lru",
)

#: Subset timed under both engines on the hit-heavy trace.
ENGINE_COMPARED = ("alg-discrete", "lru", "fifo", "greedydual")


def _rps(trace, name: str, k: int, costs, engine: str) -> float:
    policy = POLICY_REGISTRY[name]()
    start = time.perf_counter()
    simulate(trace, policy, k, costs=costs, validate=False, engine=engine)
    return len(trace.requests) / (time.perf_counter() - start)


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    length = 50_000 if quick else 300_000
    num_pages = 2_000
    k = 256
    trace = zipf_trace(num_pages, length, skew=0.9, seed=seed)
    costs = [MonomialCost(2)]

    rows: List[Dict[str, object]] = []
    for name in TIMED:
        policy = POLICY_REGISTRY[name]()
        start = time.perf_counter()
        result = simulate(trace, policy, k, costs=costs, validate=False)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "policy": name,
                "requests_per_sec": length / elapsed,
                "elapsed_s": elapsed,
                "misses": result.misses,
            }
        )
    rows.sort(key=lambda r: -r["requests_per_sec"])

    # Fast vs reference engine on the hit-heavy shape.
    hot_trace = zipf_trace(num_pages, length, skew=2.0, seed=seed)
    k_hot = 1_024
    engine_rows: List[Dict[str, object]] = []
    for name in ENGINE_COMPARED:
        ref = _rps(hot_trace, name, k_hot, costs, "reference")
        fast = _rps(hot_trace, name, k_hot, costs, "fast")
        engine_rows.append(
            {
                "policy": name,
                "reference_rps": ref,
                "fast_rps": fast,
                "speedup": fast / ref,
            }
        )

    rps = {r["policy"]: r["requests_per_sec"] for r in rows}
    speedups = {r["policy"]: r["speedup"] for r in engine_rows}
    checks = {
        "every policy clears 10k requests/sec": all(
            r["requests_per_sec"] > 10_000 for r in rows
        ),
        # Wall-clock checks carry generous margins: absolute timings vary
        # ~2x with machine load (the scaling *shape* is checked load-
        # independently in E14 via the naive-implementation ablation).
        "ALG-DISCRETE within 20x of LRU": rps["alg-discrete"] * 20 >= rps["lru"],
        "ALG-DISCRETE within 6x of GreedyDual (same heap family)": rps[
            "alg-discrete"
        ]
        * 6
        >= rps["greedydual"],
        # The bench_e9 bar is >=3x; here the margin is generous for the
        # same load-variance reason as above.
        "fast engine beats reference on hit-heavy trace": all(
            s > 1.5 for s in speedups.values()
        ),
    }
    text = (
        ascii_table(rows, title=f"Throughput on zipf(P={num_pages}, T={length}), k={k}")
        + "\n\n"
        + ascii_bars(
            [r["policy"] for r in rows],
            [r["requests_per_sec"] for r in rows],
            title="requests/second",
        )
        + "\n\n"
        + ascii_table(
            engine_rows,
            title=f"Fast vs reference engine on zipf skew=2.0, k={k_hot}",
        )
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows + engine_rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "TIMED", "ENGINE_COMPARED"]
