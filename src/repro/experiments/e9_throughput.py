"""E9 — engineering baseline: simulator throughput per policy.

Not a paper claim — an implementation health metric: requests/second
for each policy on a common Zipf trace, confirming the budget algorithm
is implementable at practical rates (the paper's ALG-DISCRETE does
O(log k) amortised work per request, plus O(siblings) on evictions).

Expected shape: every policy clears a sanity floor; ALG-DISCRETE is
within an order of magnitude of LRU.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.analysis.report import ascii_bars, ascii_table
from repro.core.alg_discrete import AlgDiscrete
from repro.core.cost_functions import MonomialCost
from repro.experiments.base import ExperimentOutput
from repro.policies import POLICY_REGISTRY
from repro.sim.engine import simulate
from repro.workloads.builders import zipf_trace

EXPERIMENT_ID = "e9"
TITLE = "Simulator throughput (requests/second) per policy"

#: Policies timed here (belady/alg-cont excluded: offline / ledger-heavy).
TIMED = (
    "alg-discrete",
    "lru",
    "fifo",
    "clock",
    "lfu",
    "lru-k",
    "marking",
    "greedydual",
    "random",
    "static-lru",
)


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    length = 50_000 if quick else 300_000
    num_pages = 2_000
    k = 256
    trace = zipf_trace(num_pages, length, skew=0.9, seed=seed)
    costs = [MonomialCost(2)]

    rows: List[Dict[str, object]] = []
    for name in TIMED:
        policy = POLICY_REGISTRY[name]()
        start = time.perf_counter()
        result = simulate(trace, policy, k, costs=costs, validate=False)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "policy": name,
                "requests_per_sec": length / elapsed,
                "elapsed_s": elapsed,
                "misses": result.misses,
            }
        )
    rows.sort(key=lambda r: -r["requests_per_sec"])

    rps = {r["policy"]: r["requests_per_sec"] for r in rows}
    checks = {
        "every policy clears 10k requests/sec": all(
            r["requests_per_sec"] > 10_000 for r in rows
        ),
        # Wall-clock checks carry generous margins: absolute timings vary
        # ~2x with machine load (the scaling *shape* is checked load-
        # independently in E14 via the naive-implementation ablation).
        "ALG-DISCRETE within 20x of LRU": rps["alg-discrete"] * 20 >= rps["lru"],
        "ALG-DISCRETE within 6x of GreedyDual (same heap family)": rps[
            "alg-discrete"
        ]
        * 6
        >= rps["greedydual"],
    }
    text = (
        ascii_table(rows, title=f"Throughput on zipf(P={num_pages}, T={length}), k={k}")
        + "\n\n"
        + ascii_bars(
            [r["policy"] for r in rows],
            [r["requests_per_sec"] for r in rows],
            title="requests/second",
        )
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE", "TIMED"]
