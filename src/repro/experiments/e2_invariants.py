"""E2 — Lemma 2.1: ALG-CONT maintains the primal-dual invariants.

Runs ALG-CONT over randomized multi-tenant traces with heterogeneous
convex cost families (monomial, linear, piecewise-linear SLA,
polynomial), under the paper's end-of-sequence flush, and machine-
checks every invariant — primal/dual feasibility (1a)-(1c),
complementary slackness (2a)-(2b), and the gradient condition (3a) —
from the recorded raw dual solution.

Expected shape: zero violations on every seed (this *is* Lemma 2.1).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.report import ascii_table
from repro.core.alg_continuous import AlgContinuous
from repro.core.cost_functions import (
    CostFunction,
    LinearCost,
    MonomialCost,
    PiecewiseLinearCost,
    PolynomialCost,
)
from repro.core.invariants import check_invariants, flushed_instance
from repro.experiments.base import ExperimentOutput
from repro.sim.engine import simulate
from repro.util.rng import ensure_rng
from repro.workloads.builders import random_multi_tenant_trace

EXPERIMENT_ID = "e2"
TITLE = "Lemma 2.1: ALG-CONT maintains invariants (1a)-(3a)"


def _cost_menu(rng: np.random.Generator, n: int) -> List[CostFunction]:
    menu = [
        lambda: MonomialCost(2),
        lambda: MonomialCost(3),
        lambda: LinearCost(float(rng.uniform(0.5, 4.0))),
        lambda: PiecewiseLinearCost.sla(
            float(rng.integers(2, 8)), float(rng.uniform(1.0, 5.0)), 0.1
        ),
        lambda: PolynomialCost([0.0, 1.0, 0.5]),
    ]
    return [menu[int(rng.integers(0, len(menu)))]() for _ in range(n)]


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    num_seeds = 10 if quick else 40
    T = 300 if quick else 1200
    rows: List[Dict[str, object]] = []
    rng = ensure_rng(seed)

    for s in range(num_seeds):
        sub = int(rng.integers(0, 2**31))
        local = ensure_rng(sub)
        n = int(local.integers(2, 5))
        k = int(local.integers(3, 8))
        trace = random_multi_tenant_trace(
            num_users=n, pages_per_user=int(local.integers(2, 5)), length=T, seed=sub
        )
        costs = _cost_menu(local, n)
        ftrace, fcosts = flushed_instance(trace, costs, k)
        alg = AlgContinuous()
        result = simulate(ftrace, alg, k, costs=fcosts)
        report = check_invariants(ftrace, alg.ledger, fcosts, k)
        real_resident = [p for p in result.final_cache if p < trace.num_pages]
        rows.append(
            {
                "seed": sub,
                "users": n,
                "k": k,
                "T": ftrace.length,
                "evictions": len(alg.ledger.eviction_events),
                "violations": len(report.violations),
                "flush_emptied_cache": len(real_resident) == 0,
                "conditions": ",".join(report.checked_conditions),
            }
        )

    total_violations = sum(r["violations"] for r in rows)
    checks = {
        "zero invariant violations across all seeds": total_violations == 0,
        "flush leaves no real page resident (every x is eventually set)": all(
            r["flush_emptied_cache"] for r in rows
        ),
    }
    text = ascii_table(
        rows,
        columns=["seed", "users", "k", "T", "evictions", "violations", "flush_emptied_cache"],
        title=f"Invariant checks over {num_seeds} randomized flushed instances",
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
