"""Experiment registry: id → (run function, title).

``run_experiment('e1')`` executes one experiment; ``run_all`` executes
the suite.  Each experiment supports ``quick`` (CI-sized) and full
modes; see DESIGN.md §3 for the experiment-to-paper-claim index.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    e1_competitive_ratio,
    e10_derivative_ablation,
    e11_workload_sensitivity,
    e12_worst_case_search,
    e13_randomization,
    e14_scaling,
    e15_fractional_bbn,
    e16_serving,
    e17_obs_overhead,
    e18_audit_lower_bound,
    e19_network,
    e2_invariants,
    e3_bicriteria,
    e4_lower_bound,
    e5_sla_comparison,
    e6_linear_reduction,
    e7_claim23,
    e8_multipool,
    e9_throughput,
)
from repro.experiments.base import ExperimentOutput

_MODULES = (
    e1_competitive_ratio,
    e2_invariants,
    e3_bicriteria,
    e4_lower_bound,
    e5_sla_comparison,
    e6_linear_reduction,
    e7_claim23,
    e8_multipool,
    e9_throughput,
    e10_derivative_ablation,
    e11_workload_sensitivity,
    e12_worst_case_search,
    e13_randomization,
    e14_scaling,
    e15_fractional_bbn,
    e16_serving,
    e17_obs_overhead,
    e18_audit_lower_bound,
    e19_network,
)

EXPERIMENTS: Dict[str, Tuple[Callable[..., ExperimentOutput], str]] = {
    mod.EXPERIMENT_ID: (mod.run, mod.TITLE) for mod in _MODULES
}


def run_experiment(
    experiment_id: str, quick: bool = True, seed: int = 0
) -> ExperimentOutput:
    """Run one experiment by id (e.g. ``'e1'``)."""
    try:
        fn, _title = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    return fn(quick=quick, seed=seed)


def run_all(quick: bool = True, seed: int = 0) -> List[ExperimentOutput]:
    """Run the whole suite in id order."""
    return [run_experiment(eid, quick=quick, seed=seed) for eid in sorted(EXPERIMENTS)]


__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]
