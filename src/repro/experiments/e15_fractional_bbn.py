"""E15 — lineage: the BBN fractional LP algorithm vs deterministic k.

The paper's related-work section: "our convex program builds on a
different linear program which was given by Bansal, Buchbinder and
Naor [3] for the weighted caching problem; [3] obtains improved
competitive algorithms using randomization."  This experiment runs our
implementation of BBN's online *fractional* primal-dual algorithm on
the classical adversarial cycle (k+1 pages) and on weighted random
mixes, against the exact LP optimum:

* on the cycle, deterministic integral policies (LRU = ALG with unit
  linear costs) pay ratio ≈ k while the fractional algorithm stays at
  :math:`O(\\log k)` — the separation that motivates randomized
  caching;
* the produced fractional solutions are feasible points of the paper's
  (CP) with linear costs (machine-checked), i.e. the exact object the
  paper's relaxation reasons about.

Expected shapes: deterministic cycle ratio = k exactly; fractional
cycle ratio ≤ 2·ln(1+k) and grows (sub-linearly) with k; feasibility
holds everywhere; on random weighted mixes the fractional cost is
within the deterministic integral cost.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.analysis.report import ascii_series, ascii_table
from repro.core.alg_discrete import AlgDiscrete
from repro.core.convex_program import build_program, fractional_opt_lower_bound
from repro.core.cost_functions import LinearCost
from repro.core.fractional_online import OnlineFractionalCaching, bbn_competitive_ceiling
from repro.experiments.base import ExperimentOutput
from repro.sim.engine import simulate
from repro.sim.metrics import total_cost
from repro.util.rng import ensure_rng
from repro.workloads.builders import adversarial_cycle_trace, random_multi_tenant_trace

EXPERIMENT_ID = "e15"
TITLE = "BBN fractional LP algorithm: O(log k) where deterministic pays k"


def run(quick: bool = True, seed: int = 0) -> ExperimentOutput:
    ks = [4, 8, 16] if quick else [4, 8, 16, 32, 64]
    cycles = 50 if quick else 150
    rng = ensure_rng(seed)

    rows: List[Dict[str, object]] = []
    for k in ks:
        trace = adversarial_cycle_trace(k, cycles * (k + 1))
        costs = [LinearCost(1.0)]
        lp_opt = fractional_opt_lower_bound(trace, costs, k)

        frac = OnlineFractionalCaching([1.0], k)
        frac_result = frac.run(trace)
        prog = build_program(trace, k)
        feasible = prog.is_feasible(frac.to_program_vector(trace, frac_result), tol=1e-6)

        det = simulate(trace, AlgDiscrete(), k, costs=costs)
        det_cost = total_cost(det, costs)

        rows.append(
            {
                "k": k,
                "det_ratio": det_cost / lp_opt,
                "frac_ratio": frac_result.cost / lp_opt,
                "ln(1+k)": bbn_competitive_ceiling(k),
                "frac_feasible": feasible,
                "frac_violation": frac_result.max_violation,
            }
        )

    # Random weighted mixes: fractional relaxations only get cheaper.
    mixes_ok = True
    for _ in range(3 if quick else 8):
        sub = int(rng.integers(0, 2**31))
        trace = random_multi_tenant_trace(3, 4, 400, seed=sub)
        weights = [1.0, 4.0, 16.0]
        costs = [LinearCost(w) for w in weights]
        k = 5
        frac = OnlineFractionalCaching(weights, k).run(trace)
        det = total_cost(simulate(trace, AlgDiscrete(), k, costs=costs), costs)
        prog = build_program(trace, k)
        vec = OnlineFractionalCaching(weights, k).to_program_vector(trace, frac)
        mixes_ok &= prog.is_feasible(vec, tol=1e-6)
        mixes_ok &= frac.cost <= det * 1.5  # fractional should not be worse

    checks = {
        "deterministic ratio equals k on the cycle (every k)": all(
            abs(r["det_ratio"] - r["k"]) / r["k"] < 0.15 for r in rows
        ),
        "fractional ratio <= 2 ln(1+k) on the cycle": all(
            r["frac_ratio"] <= 2.0 * r["ln(1+k)"] for r in rows
        ),
        "fractional/deterministic gap widens with k": all(
            rows[i]["det_ratio"] / rows[i]["frac_ratio"]
            < rows[i + 1]["det_ratio"] / rows[i + 1]["frac_ratio"]
            for i in range(len(rows) - 1)
        ),
        "fractional solutions are feasible for the paper's (CP)": all(
            r["frac_feasible"] for r in rows
        )
        and mixes_ok,
        "no residual constraint violation": all(
            r["frac_violation"] <= 1e-6 for r in rows
        ),
    }
    text = (
        ascii_table(
            rows,
            title=f"cyclic k+1 scan, {cycles} cycles: ratios vs exact LP optimum",
        )
        + "\n\n"
        + ascii_series(
            [float(r["k"]) for r in rows],
            {
                "deterministic": [r["det_ratio"] for r in rows],
                "fractional (BBN)": [r["frac_ratio"] for r in rows],
                "ln(1+k)": [r["ln(1+k)"] for r in rows],
            },
            title="competitive ratio vs k (log y)",
            logy=True,
        )
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        shape_checks=checks,
    )


__all__ = ["run", "EXPERIMENT_ID", "TITLE"]
