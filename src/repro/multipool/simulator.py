"""Multi-pool simulation: per-pool caches, per-pool eviction policies,
epoch-boundary migrations.

Each pool runs its own instance of an eviction policy (by default the
paper's ALG-DISCRETE, so the single-pool guarantees apply within each
pool); a migration flushes the user's resident pages from the old pool
and re-routes its future requests to the new one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.alg_discrete import AlgDiscrete
from repro.core.cost_functions import CostFunction
from repro.multipool.assignment import AssignmentStrategy
from repro.multipool.model import MultiPoolResult, PoolSystem
from repro.sim.policy import EvictionPolicy, SimContext
from repro.sim.trace import Trace
from repro.util.validation import check_positive_int


def simulate_multipool(
    trace: Trace,
    costs: Sequence[CostFunction],
    system: PoolSystem,
    strategy: AssignmentStrategy,
    epoch_length: int = 1_000,
    policy_factory: Callable[[], EvictionPolicy] = AlgDiscrete,
) -> MultiPoolResult:
    """Run *trace* over a multi-pool system under *strategy*.

    Parameters
    ----------
    trace, costs:
        The shared workload and per-user convex costs.
    system:
        Pool capacities and the per-migration cost.
    strategy:
        Initial assignment + optional epoch rebalancing.
    epoch_length:
        Requests between rebalance opportunities.
    policy_factory:
        Builds each pool's eviction policy (default: ALG-DISCRETE, so
        each pool independently enjoys the paper's guarantee over the
        sub-stream it serves).
    """
    epoch_length = check_positive_int(epoch_length, "epoch_length")
    n = trace.num_users
    if len(costs) < n:
        raise ValueError(f"need {n} cost functions, got {len(costs)}")

    page_counts = np.bincount(trace.owners, minlength=n)
    assignment = np.asarray(
        strategy.initial(system, n, page_counts, costs), dtype=np.int64
    ).copy()
    if assignment.size != n or assignment.min() < 0 or assignment.max() >= system.num_pools:
        raise ValueError("strategy returned an invalid assignment")

    # Per-pool policy + cache. Policies see the full owner/cost tables;
    # they only ever meet pages routed to their pool.
    policies: List[EvictionPolicy] = []
    caches: List[Set[int]] = []
    for p in range(system.num_pools):
        policy = policy_factory()
        if policy.requires_future:
            raise ValueError("multi-pool simulation supports online policies only")
        ctx = SimContext(
            k=int(system.capacities[p]),
            owners=trace.owners,
            num_users=n,
            costs=costs if policy.requires_costs else costs,
            trace=None,
            num_pages=trace.num_pages,
            horizon=trace.length,
        )
        policy.reset(ctx)
        policies.append(policy)
        caches.append(set())

    user_misses = np.zeros(n, dtype=np.int64)
    epoch_misses = np.zeros(n, dtype=np.int64)
    per_pool_misses = np.zeros(system.num_pools, dtype=np.int64)
    resident_by_user = np.zeros(n, dtype=np.int64)
    migrations = 0

    owners = trace.owners
    requests = trace.requests
    for t in range(requests.size):
        page = int(requests[t])
        user = int(owners[page])
        pool = int(assignment[user])
        cache = caches[pool]
        policy = policies[pool]
        if page in cache:
            policy.on_hit(page, t)
        else:
            user_misses[user] += 1
            epoch_misses[user] += 1
            per_pool_misses[pool] += 1
            if len(cache) < system.capacities[pool]:
                cache.add(page)
                policy.on_insert(page, t)
                resident_by_user[user] += 1
            else:
                victim = policy.choose_victim(page, t)
                if victim not in cache or victim == page:
                    raise RuntimeError(
                        f"pool {pool} policy returned invalid victim {victim} at t={t}"
                    )
                cache.remove(victim)
                policy.on_evict(victim, t)
                resident_by_user[int(owners[victim])] -= 1
                cache.add(page)
                policy.on_insert(page, t)
                resident_by_user[user] += 1

        # Epoch boundary: offer the strategy one migration.
        if (t + 1) % epoch_length == 0:
            move = strategy.rebalance(
                system,
                assignment,
                epoch_misses,
                user_misses,
                costs,
                resident_by_user=resident_by_user,
            )
            if move is not None:
                mig_user, new_pool = move
                old_pool = int(assignment[mig_user])
                if not (0 <= new_pool < system.num_pools):
                    raise ValueError(f"strategy chose invalid pool {new_pool}")
                if new_pool != old_pool:
                    # Flush the user's resident pages from the old pool.
                    old_cache = caches[old_pool]
                    old_policy = policies[old_pool]
                    for resident in [
                        q for q in old_cache if int(owners[q]) == mig_user
                    ]:
                        old_cache.remove(resident)
                        old_policy.on_flush(resident, t)
                        resident_by_user[mig_user] -= 1
                    assignment[mig_user] = new_pool
                    migrations += 1
            epoch_misses[:] = 0

    return MultiPoolResult(
        assignment_name=strategy.name,
        user_misses=user_misses,
        migrations=migrations,
        migration_cost_paid=migrations * system.migration_cost,
        final_assignment=assignment,
        per_pool_misses=per_pool_misses,
    )


__all__ = ["simulate_multipool"]
