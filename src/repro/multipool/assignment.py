"""User-to-pool assignment strategies for the multi-pool extension.

An :class:`AssignmentStrategy` chooses the initial assignment and may
request migrations at epoch boundaries, trading migration cost against
the convex miss costs the paper studies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.multipool.model import PoolSystem
from repro.util.rng import RandomSource, ensure_rng
from repro.util.validation import check_positive_int


class AssignmentStrategy(ABC):
    """Chooses and (optionally) revises the user → pool map."""

    name = "assignment"

    @abstractmethod
    def initial(
        self,
        system: PoolSystem,
        num_users: int,
        page_counts: np.ndarray,
        costs: Sequence[CostFunction],
    ) -> np.ndarray:
        """Return the initial assignment array (user → pool index)."""

    def rebalance(
        self,
        system: PoolSystem,
        assignment: np.ndarray,
        epoch_misses: np.ndarray,
        total_misses: np.ndarray,
        costs: Sequence[CostFunction],
        resident_by_user: Optional[np.ndarray] = None,
    ) -> Optional[tuple[int, int]]:
        """Optionally return ``(user, new_pool)`` to migrate at an epoch
        boundary; ``None`` keeps the current assignment.
        ``resident_by_user[i]`` is user *i*'s currently cached page
        count (used to price the post-migration cold-cache penalty).
        Default: never migrate."""
        return None


class RoundRobinAssignment(AssignmentStrategy):
    """Users dealt to pools in order — the static baseline."""

    name = "round-robin"

    def initial(self, system, num_users, page_counts, costs):
        return np.arange(num_users, dtype=np.int64) % system.num_pools


class BalancedPagesAssignment(AssignmentStrategy):
    """Greedy bin packing on page-universe size relative to capacity:
    each user (largest footprint first) joins the pool with the lowest
    projected load ratio.  Static — no migrations."""

    name = "balanced-pages"

    def initial(self, system, num_users, page_counts, costs):
        assignment = np.zeros(num_users, dtype=np.int64)
        load = np.zeros(system.num_pools, dtype=float)
        order = np.argsort(-np.asarray(page_counts, dtype=float), kind="stable")
        for user in order:
            ratios = (load + page_counts[user]) / system.capacities
            pool = int(np.argmin(ratios))
            assignment[user] = pool
            load[pool] += page_counts[user]
        return assignment


class AllInOneAssignment(AssignmentStrategy):
    """Degenerate static assignment: every user on pool 0, the rest of
    the cluster idle — the pathological starting point that motivates
    migration (e.g. tenants landing on one server as they arrive)."""

    name = "all-in-one"

    def initial(self, system, num_users, page_counts, costs):
        return np.zeros(num_users, dtype=np.int64)


class CostAwareRebalancing(AssignmentStrategy):
    """Starts from a configurable (by default degenerate all-in-one)
    assignment and repairs it: at each epoch boundary, consider
    migrating the user accruing the highest *marginal cost pressure*
    from the most-pressured pool to the least-pressured one.

    Pressure of user *i*: :math:`f_i'(m_i + 1) \\times` its epoch miss
    count — the linearised cost it keeps accruing per epoch.  Pool
    pressure: sum of its users' pressures divided by capacity.  The
    migration fires only when the projected per-epoch relief —
    ``pressure × (1 - dst/src pool pressure)`` — exceeds the one-off
    price: the migration cost plus the cold-cache penalty
    ``resident pages × marginal`` (the flushed pages must be
    re-fetched), and the source pool is at least ``imbalance_factor``
    more pressured than the destination.
    """

    name = "cost-aware-rebalance"

    def __init__(
        self,
        imbalance_factor: float = 1.3,
        start: Optional[AssignmentStrategy] = None,
    ) -> None:
        if imbalance_factor < 1.0:
            raise ValueError(f"imbalance_factor must be >= 1, got {imbalance_factor}")
        self.imbalance_factor = float(imbalance_factor)
        self.start = start if start is not None else AllInOneAssignment()
        # Each user migrates at most once per run: repeated moves of the
        # same user are almost always thrash (e.g. a scan tenant whose
        # misses are compulsory looks "hot" in every pool); one
        # corrective move is what repairs a bad static assignment.
        self._migrated: set = set()

    def initial(self, system, num_users, page_counts, costs):
        self._migrated = set()
        return self.start.initial(system, num_users, page_counts, costs)

    def rebalance(
        self,
        system,
        assignment,
        epoch_misses,
        total_misses,
        costs,
        resident_by_user=None,
    ):
        n = assignment.size
        marginals = np.array(
            [float(costs[i].derivative(float(total_misses[i]) + 1.0)) for i in range(n)]
        )
        pressures = marginals * np.asarray(epoch_misses, dtype=float)
        pool_pressure = np.zeros(system.num_pools, dtype=float)
        for i in range(n):
            pool_pressure[assignment[i]] += pressures[i]
        pool_pressure /= system.capacities

        dst = int(np.argmin(pool_pressure))
        src = int(np.argmax(pool_pressure))
        if src == dst or pool_pressure[src] < self.imbalance_factor * max(
            pool_pressure[dst], 1e-12
        ):
            return None
        candidates = [
            i
            for i in range(n)
            if assignment[i] == src and pressures[i] > 0 and i not in self._migrated
        ]
        if not candidates:
            return None
        hot_user = max(candidates, key=lambda i: pressures[i])
        relief = pressures[hot_user] * (
            1.0 - pool_pressure[dst] / pool_pressure[src]
        )
        resident = (
            float(resident_by_user[hot_user]) if resident_by_user is not None else 0.0
        )
        cold_penalty = resident * marginals[hot_user]
        if relief > system.migration_cost + cold_penalty:
            self._migrated.add(hot_user)
            return hot_user, dst
        return None


class RandomAssignment(AssignmentStrategy):
    """Uniform random static assignment (sanity baseline)."""

    name = "random-assignment"

    def __init__(self, rng: RandomSource = None) -> None:
        self._rng = ensure_rng(rng)

    def initial(self, system, num_users, page_counts, costs):
        return self._rng.integers(0, system.num_pools, size=num_users).astype(np.int64)


__all__ = [
    "AssignmentStrategy",
    "RoundRobinAssignment",
    "BalancedPagesAssignment",
    "CostAwareRebalancing",
    "RandomAssignment",
]
