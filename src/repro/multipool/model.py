"""Multi-pool memory model — the paper's §5 future-work direction.

"An interesting direction for future work is to consider the case of
multiple memory pools (e.g., each pool corresponds to a single physical
server), where each user has to be assigned to a single pool, with
potentially switching cost incurred for migrating users between
servers."

The model here: ``P`` pools with capacities :math:`k_1, \\dots, k_P`;
an assignment :math:`a: U \\to \\{1..P\\}` mapping each user to one
pool; a user's pages may only reside in its assigned pool.  Migrating a
user costs ``migration_cost`` (per move; its cache contents in the old
pool are flushed, so subsequent requests cold-miss).  The objective is
:math:`\\sum_i f_i(m_i) + c_{mig} \\cdot \\#\\text{migrations}`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.util.validation import check_non_negative, check_positive_int


@dataclass
class PoolSystem:
    """Static description of a multi-pool deployment."""

    capacities: np.ndarray
    migration_cost: float = 0.0

    def __post_init__(self) -> None:
        caps = np.asarray(self.capacities, dtype=np.int64)
        if caps.ndim != 1 or caps.size == 0:
            raise ValueError("capacities must be a non-empty 1-D array")
        if np.any(caps < 1):
            raise ValueError("every pool needs capacity >= 1")
        self.capacities = caps
        self.migration_cost = check_non_negative(self.migration_cost, "migration_cost")

    @property
    def num_pools(self) -> int:
        return int(self.capacities.size)

    @property
    def total_capacity(self) -> int:
        return int(self.capacities.sum())


@dataclass
class MultiPoolResult:
    """Outcome of a multi-pool simulation."""

    assignment_name: str
    user_misses: np.ndarray
    migrations: int
    migration_cost_paid: float
    final_assignment: np.ndarray
    per_pool_misses: np.ndarray

    def total_cost(self, costs: Sequence[CostFunction]) -> float:
        """:math:`\\sum_i f_i(m_i)` plus migration charges."""
        base = float(
            sum(f.value(int(m)) for f, m in zip(costs, self.user_misses))
        )
        return base + self.migration_cost_paid

    def __repr__(self) -> str:
        return (
            f"MultiPoolResult({self.assignment_name!r}, "
            f"misses={int(self.user_misses.sum())}, migrations={self.migrations})"
        )


__all__ = ["PoolSystem", "MultiPoolResult"]
