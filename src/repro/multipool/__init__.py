"""Multi-pool extension (the paper's §5 future-work direction):
several memory pools, user-to-pool assignment, migration costs.
"""

from repro.multipool.assignment import (
    AllInOneAssignment,
    AssignmentStrategy,
    BalancedPagesAssignment,
    CostAwareRebalancing,
    RandomAssignment,
    RoundRobinAssignment,
)
from repro.multipool.model import MultiPoolResult, PoolSystem
from repro.multipool.simulator import simulate_multipool

__all__ = [
    "PoolSystem",
    "MultiPoolResult",
    "AssignmentStrategy",
    "AllInOneAssignment",
    "RoundRobinAssignment",
    "BalancedPagesAssignment",
    "CostAwareRebalancing",
    "RandomAssignment",
    "simulate_multipool",
]
