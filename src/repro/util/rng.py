"""Seeded random-number plumbing.

Every stochastic component in the library (workload generators, the
``Random`` eviction policy, experiment sweeps) accepts either an integer
seed, an existing :class:`numpy.random.Generator`, or ``None``.  This
module centralises the coercion so that results are reproducible from a
single integer and independent streams can be spawned for parallel
sweeps without correlated randomness.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Anything accepted where a random source is expected.
RandomSource = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(source: RandomSource = None) -> np.random.Generator:
    """Coerce *source* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    source:
        ``None`` (fresh OS entropy), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned as-is so callers can share a stream deliberately).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, np.random.SeedSequence):
        return np.random.default_rng(source)
    if source is None or isinstance(source, (int, np.integer)):
        return np.random.default_rng(source)
    raise TypeError(
        f"cannot build a random generator from {type(source).__name__!r}; "
        "expected None, int, SeedSequence, or Generator"
    )


def spawn_rngs(source: RandomSource, n: int) -> list[np.random.Generator]:
    """Create *n* statistically independent generators from one source.

    Uses :class:`numpy.random.SeedSequence` spawning so streams do not
    overlap even for adjacent integer seeds.  If *source* is already a
    generator, children are derived from its bit generator's seed
    sequence when available, otherwise from integers drawn from it.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(source, np.random.Generator):
        seed_seq = getattr(source.bit_generator, "seed_seq", None)
        if isinstance(seed_seq, np.random.SeedSequence):
            children = seed_seq.spawn(n)
            return [np.random.default_rng(c) for c in children]
        seeds = source.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    if isinstance(source, np.random.SeedSequence):
        return [np.random.default_rng(c) for c in source.spawn(n)]
    seq = np.random.SeedSequence(source)
    return [np.random.default_rng(c) for c in seq.spawn(n)]


def derive_seed(source: RandomSource, index: int) -> int:
    """Deterministically derive an integer seed for stream *index*.

    Useful when a child component wants an ``int`` seed it can report in
    logs rather than an opaque generator.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    if isinstance(source, np.random.Generator):
        # Burn `index + 1` draws for determinism relative to this call only.
        vals = source.integers(0, 2**63 - 1, size=index + 1)
        return int(vals[-1])
    seq = source if isinstance(source, np.random.SeedSequence) else np.random.SeedSequence(source)
    children: Sequence[np.random.SeedSequence] = seq.spawn(index + 1)
    state = children[-1].generate_state(1, dtype=np.uint64)
    return int(state[0] % (2**63 - 1))


def shuffled(items: Sequence, source: RandomSource = None) -> list:
    """Return a shuffled copy of *items* without mutating the input."""
    rng = ensure_rng(source)
    out = list(items)
    rng.shuffle(out)
    return out


__all__ = ["RandomSource", "ensure_rng", "spawn_rngs", "derive_seed", "shuffled"]
