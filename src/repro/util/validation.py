"""Argument-validation helpers with consistent error messages.

Fail-fast validation keeps the numeric core free of defensive clutter:
constructors validate once, hot loops assume clean inputs.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np


def _is_real(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
        value, bool
    )


def check_positive(value: Any, name: str) -> float:
    """Require a real number strictly greater than zero; return as float."""
    if not _is_real(value):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_non_negative(value: Any, name: str) -> float:
    """Require a real number >= 0; return as float."""
    if not _is_real(value):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and non-negative, got {value}")
    return value


def check_positive_int(value: Any, name: str) -> int:
    """Require an integer >= 1; return as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Require an integer >= 0; return as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Require a real number in [0, 1]; return as float."""
    if not _is_real(value):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(value: Any, name: str, low: float, high: float) -> float:
    """Require ``low <= value <= high``; return as float."""
    if not _is_real(value):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


__all__ = [
    "check_positive",
    "check_non_negative",
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_in_range",
]
