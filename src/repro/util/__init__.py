"""Low-level utilities shared across the library.

The submodules here are intentionally dependency-light: seeded RNG
plumbing (:mod:`repro.util.rng`), an addressable binary min-heap used by
budget-driven eviction policies (:mod:`repro.util.heap`), an intrusive
doubly-linked list backing the recency-ordered policies
(:mod:`repro.util.linkedlist`), and argument-validation helpers
(:mod:`repro.util.validation`).
"""

from repro.util.heap import AddressableHeap
from repro.util.linkedlist import DoublyLinkedList, ListNode
from repro.util.rng import RandomSource, ensure_rng, spawn_rngs
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "AddressableHeap",
    "DoublyLinkedList",
    "ListNode",
    "RandomSource",
    "ensure_rng",
    "spawn_rngs",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
