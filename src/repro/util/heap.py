"""Addressable binary min-heap.

The budget-driven eviction rules in the paper's ALG-DISCRETE, and the
classic GreedyDual weighted-caching baseline, repeatedly need "the cached
page with the smallest key" while keys of arbitrary resident pages are
updated on hits.  Python's :mod:`heapq` has no decrease-key, so this
module provides a small addressable heap with ``O(log n)`` push / pop /
update / remove and ``O(1)`` peek and membership.

Ties are broken by insertion order (FIFO among equal keys) so that the
algorithms built on top are fully deterministic — the paper's analysis
allows any tie-break, but determinism makes the ALG-CONT/ALG-DISCRETE
equivalence testable.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


class AddressableHeap(Generic[K]):
    """Binary min-heap over ``(key, item)`` with item-addressed updates.

    Items must be hashable and unique.  Keys are compared as
    ``(key, seqno)`` pairs where ``seqno`` is a monotone insertion
    counter, making tie-breaking deterministic and FIFO.
    """

    __slots__ = ("_entries", "_index", "_counter")

    def __init__(self) -> None:
        # Parallel array of [key, seqno, item] entries forming the heap.
        self._entries: list[list] = []
        # item -> position in self._entries
        self._index: dict[K, int] = {}
        self._counter: int = 0

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: K) -> bool:
        return item in self._index

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[K]:
        """Iterate items in arbitrary (heap) order."""
        for entry in self._entries:
            yield entry[2]

    def items(self) -> Iterator[Tuple[K, float]]:
        """Iterate ``(item, key)`` pairs in arbitrary (heap) order."""
        for entry in self._entries:
            yield entry[2], entry[0]

    # ------------------------------------------------------------------
    # Heap operations
    # ------------------------------------------------------------------
    def push(self, item: K, key: float) -> None:
        """Insert *item* with *key*; raises if the item is present."""
        if item in self._index:
            raise KeyError(f"item {item!r} already in heap; use update()")
        entry = [key, self._counter, item]
        self._counter += 1
        self._entries.append(entry)
        self._index[item] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def pop(self) -> Tuple[K, float]:
        """Remove and return ``(item, key)`` with the smallest key."""
        if not self._entries:
            raise IndexError("pop from empty heap")
        top = self._entries[0]
        last = self._entries.pop()
        del self._index[top[2]]
        if self._entries:
            self._entries[0] = last
            self._index[last[2]] = 0
            self._sift_down(0)
        return top[2], top[0]

    def peek(self) -> Tuple[K, float]:
        """Return ``(item, key)`` with the smallest key without removal."""
        if not self._entries:
            raise IndexError("peek on empty heap")
        top = self._entries[0]
        return top[2], top[0]

    def key_of(self, item: K) -> float:
        """Current key of *item* (raises ``KeyError`` if absent)."""
        return self._entries[self._index[item]][0]

    def update(self, item: K, key: float) -> None:
        """Change the key of an existing *item*, restoring heap order."""
        pos = self._index[item]
        old = self._entries[pos][0]
        self._entries[pos][0] = key
        if key < old:
            self._sift_up(pos)
        elif key > old:
            self._sift_down(pos)

    def push_or_update(self, item: K, key: float) -> None:
        """Insert *item* or update its key if already present."""
        if item in self._index:
            self.update(item, key)
        else:
            self.push(item, key)

    def remove(self, item: K) -> float:
        """Remove *item*, returning its key."""
        pos = self._index[item]
        entry = self._entries[pos]
        last = self._entries.pop()
        del self._index[item]
        if pos < len(self._entries):
            self._entries[pos] = last
            self._index[last[2]] = pos
            # Restore order in whichever direction is needed.
            self._sift_up(pos)
            self._sift_down(self._index[last[2]])
        return entry[0]

    def add_to_all(self, delta: float) -> None:
        """Add *delta* to every key in place.

        A uniform shift preserves heap order, so this is ``O(n)`` with no
        restructuring.  ALG-DISCRETE's "subtract the evicted budget from
        everyone" step uses this (see
        :class:`repro.core.alg_discrete.AlgDiscrete`, which instead keeps
        a global offset for ``O(1)`` — this method exists for the direct,
        easily-audited implementation and for tests).
        """
        for entry in self._entries:
            entry[0] += delta

    def clear(self) -> None:
        self._entries.clear()
        self._index.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _less(self, a: int, b: int) -> bool:
        ea, eb = self._entries[a], self._entries[b]
        return (ea[0], ea[1]) < (eb[0], eb[1])

    def _swap(self, a: int, b: int) -> None:
        ents = self._entries
        ents[a], ents[b] = ents[b], ents[a]
        self._index[ents[a][2]] = a
        self._index[ents[b][2]] = b

    def _sift_up(self, pos: int) -> None:
        while pos > 0:
            parent = (pos - 1) >> 1
            if self._less(pos, parent):
                self._swap(pos, parent)
                pos = parent
            else:
                break

    def _sift_down(self, pos: int) -> None:
        n = len(self._entries)
        while True:
            left = 2 * pos + 1
            right = left + 1
            smallest = pos
            if left < n and self._less(left, smallest):
                smallest = left
            if right < n and self._less(right, smallest):
                smallest = right
            if smallest == pos:
                break
            self._swap(pos, smallest)
            pos = smallest

    def check_invariants(self) -> None:
        """Validate heap order and index consistency (test helper)."""
        n = len(self._entries)
        assert len(self._index) == n, "index size mismatch"
        for i, entry in enumerate(self._entries):
            assert self._index[entry[2]] == i, f"index broken at {i}"
            left, right = 2 * i + 1, 2 * i + 2
            if left < n:
                assert not self._less(left, i), f"heap order broken at {i}/{left}"
            if right < n:
                assert not self._less(right, i), f"heap order broken at {i}/{right}"


__all__ = ["AddressableHeap"]
