"""Intrusive doubly-linked list with O(1) node removal.

Backs the recency-ordered eviction policies (LRU, MRU, CLOCK-adjacent
structures, the LRU stacks inside LRU-K and the stack-distance workload
model).  Nodes are addressable by payload through the owning policy's
dict, so "move this page to the MRU end" is O(1).
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class ListNode(Generic[T]):
    """A node holding *value*; links are managed by the owning list."""

    __slots__ = ("value", "prev", "next", "_owner")

    def __init__(self, value: T) -> None:
        self.value = value
        self.prev: Optional["ListNode[T]"] = None
        self.next: Optional["ListNode[T]"] = None
        self._owner: Optional["DoublyLinkedList[T]"] = None


class DoublyLinkedList(Generic[T]):
    """Doubly-linked list with sentinel-free head/tail bookkeeping.

    Conventions used by the policies: *head* is the eviction end (least
    recent) and *tail* is the insertion end (most recent).
    """

    __slots__ = ("head", "tail", "_size")

    def __init__(self) -> None:
        self.head: Optional[ListNode[T]] = None
        self.tail: Optional[ListNode[T]] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[T]:
        node = self.head
        while node is not None:
            yield node.value
            node = node.next

    def __reversed__(self) -> Iterator[T]:
        node = self.tail
        while node is not None:
            yield node.value
            node = node.prev

    # ------------------------------------------------------------------
    def append(self, value: T) -> ListNode[T]:
        """Append *value* at the tail (most-recent end); return its node."""
        node = ListNode(value)
        self.append_node(node)
        return node

    def append_node(self, node: ListNode[T]) -> None:
        """Link an unattached *node* at the tail."""
        if node._owner is not None:
            raise ValueError("node is already attached to a list")
        node._owner = self
        node.prev = self.tail
        node.next = None
        if self.tail is not None:
            self.tail.next = node
        self.tail = node
        if self.head is None:
            self.head = node
        self._size += 1

    def appendleft(self, value: T) -> ListNode[T]:
        """Insert *value* at the head (eviction end); return its node."""
        node = ListNode(value)
        node._owner = self
        node.next = self.head
        node.prev = None
        if self.head is not None:
            self.head.prev = node
        self.head = node
        if self.tail is None:
            self.tail = node
        self._size += 1
        return node

    def remove(self, node: ListNode[T]) -> None:
        """Unlink *node* from this list in O(1)."""
        if node._owner is not self:
            raise ValueError("node does not belong to this list")
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self.tail = node.prev
        node.prev = node.next = None
        node._owner = None
        self._size -= 1

    def move_to_tail(self, node: ListNode[T]) -> None:
        """Move *node* to the most-recent end in O(1)."""
        if node._owner is not self:
            raise ValueError("node does not belong to this list")
        if node is self.tail:
            return
        self.remove(node)
        self.append_node(node)

    def popleft(self) -> T:
        """Remove and return the head (least-recent) value."""
        if self.head is None:
            raise IndexError("popleft from empty list")
        node = self.head
        self.remove(node)
        return node.value

    def pop(self) -> T:
        """Remove and return the tail (most-recent) value."""
        if self.tail is None:
            raise IndexError("pop from empty list")
        node = self.tail
        self.remove(node)
        return node.value

    def clear(self) -> None:
        node = self.head
        while node is not None:
            nxt = node.next
            node.prev = node.next = None
            node._owner = None
            node = nxt
        self.head = self.tail = None
        self._size = 0

    def check_invariants(self) -> None:
        """Validate link structure and size (test helper)."""
        count = 0
        prev = None
        node = self.head
        while node is not None:
            assert node.prev is prev, "prev link broken"
            assert node._owner is self, "owner broken"
            prev = node
            node = node.next
            count += 1
        assert self.tail is prev, "tail mismatch"
        assert count == self._size, f"size mismatch: {count} != {self._size}"


__all__ = ["DoublyLinkedList", "ListNode"]
