"""Live per-tenant cost accounting for the serving subsystem.

The offline pipeline computes costs *after* a run from
:class:`~repro.sim.engine.SimResult`; a server must answer "what does
tenant *i* owe right now" and "what would their next miss cost" while
requests are still arriving.  :class:`CostLedger` keeps the running
per-tenant hit/miss counters, evaluates :math:`f_i(m_i)` on demand
through the same :class:`~repro.core.cost_functions.CostFunction`
objects the algorithms use, and quotes the paper's fresh-budget
marginal :math:`f_i'(m_i + 1)` — the price ALG-DISCRETE would assign
the tenant's next fetched page.

Windowed accounting mirrors :func:`repro.sim.metrics.windowed_miss_
counts` exactly (same window edges over the global request index,
including a trailing partial window), so a live ledger's window rows
are bit-identical to the offline recomputation from a recorded miss
curve — enforced by ``tests/test_serve_accounting.py``.  This is the
SLA shape from the paper's motivation: "up to ~M misses per window".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.util.validation import check_positive_int


class CostLedger:
    """Running hit/miss/cost state for ``n`` tenants.

    Parameters
    ----------
    num_users:
        Tenant count ``n``.
    costs:
        Per-tenant cost functions.  Optional: without them the ledger
        still counts, but cost/quote accessors raise.
    window:
        Optional window length (in requests, over the *global* request
        index) for SLA-style per-window miss rows.
    """

    def __init__(
        self,
        num_users: int,
        costs: Optional[Sequence[CostFunction]] = None,
        window: Optional[int] = None,
    ) -> None:
        self.num_users = check_positive_int(num_users, "num_users")
        if costs is not None and len(costs) < num_users:
            raise ValueError(f"need {num_users} cost functions, got {len(costs)}")
        self.costs = costs
        self.window = None if window is None else check_positive_int(window, "window")
        # Plain-int lists: the record() path runs once per served
        # request, and list indexing beats numpy scalar updates ~5x.
        self._hits: List[int] = [0] * num_users
        self._misses: List[int] = [0] * num_users
        self._t = 0
        self._window_rows: List[List[int]] = []
        self._current_window: List[int] = [0] * num_users

    @classmethod
    def from_counters(
        cls,
        num_users: int,
        costs: Optional[Sequence[CostFunction]] = None,
        window: Optional[int] = None,
        *,
        hits: Sequence[int],
        misses: Sequence[int],
        total_requests: int,
        window_bins: Optional[Dict[int, Sequence[int]]] = None,
    ) -> "CostLedger":
        """Rebuild a ledger from externally-accumulated counters.

        The merge path for process-parallel serving: each
        :class:`~repro.serve.workers.ShardWorkerPool` worker accounts
        its own requests (hit/miss lists plus per-window miss bins
        keyed by the *global* window index ``t // window``), and the
        scrape side sums them and rebuilds a ledger here — so every
        accessor, including :meth:`windowed_miss_counts`, returns
        exactly what a single live ledger over the merged stream would
        (windows with no misses become explicit zero rows, as
        :meth:`record` would have produced).
        """
        ledger = cls(num_users, costs, window=window)
        ledger._hits = [int(h) for h in hits]
        ledger._misses = [int(m) for m in misses]
        ledger._t = int(total_requests)
        if window is not None:
            bins = {int(w): [int(v) for v in row]
                    for w, row in (window_bins or {}).items()}
            full = ledger._t // window
            ledger._window_rows = [
                bins.get(w, [0] * num_users) for w in range(full)
            ]
            ledger._current_window = bins.get(full, [0] * num_users)
        return ledger

    # ------------------------------------------------------------------
    # Recording (the server's per-request hot path)
    # ------------------------------------------------------------------
    def record(self, tenant: int, hit: bool) -> None:
        """Account one served request for *tenant*."""
        if hit:
            self._hits[tenant] += 1
        else:
            self._misses[tenant] += 1
            if self.window is not None:
                self._current_window[tenant] += 1
        self._t += 1
        if self.window is not None and self._t % self.window == 0:
            self._window_rows.append(self._current_window)
            self._current_window = [0] * self.num_users

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return self._t

    @property
    def hits(self) -> int:
        return sum(self._hits)

    @property
    def misses(self) -> int:
        return sum(self._misses)

    def hits_by_user(self) -> np.ndarray:
        return np.asarray(self._hits, dtype=np.int64)

    def misses_by_user(self) -> np.ndarray:
        """The running :math:`m_i` vector (the paper's :math:`a_i`)."""
        return np.asarray(self._misses, dtype=np.int64)

    # ------------------------------------------------------------------
    # Cost accessors
    # ------------------------------------------------------------------
    def _cost_fn(self, tenant: int) -> CostFunction:
        if self.costs is None:
            raise ValueError("this ledger has no cost functions")
        return self.costs[tenant]

    def cost_of(self, tenant: int) -> float:
        """Running :math:`f_i(m_i)` for *tenant*."""
        return float(self._cost_fn(tenant).value(self._misses[tenant]))

    def costs_by_user(self) -> np.ndarray:
        return np.array(
            [self.cost_of(i) for i in range(self.num_users)], dtype=float
        )

    def total_cost(self) -> float:
        """The paper's objective :math:`\\sum_i f_i(m_i)`, so far."""
        return float(self.costs_by_user().sum())

    def marginal_quote(self, tenant: int) -> float:
        """:math:`f_i'(m_i + 1)` — the marginal price of *tenant*'s next
        miss: the same fresh-budget rule ALG-DISCRETE applies, evaluated
        on served misses (the paper's fetch count :math:`a_i`, which
        exceeds the algorithm's internal eviction count by the cold
        misses)."""
        return float(self._cost_fn(tenant).derivative(self._misses[tenant] + 1))

    # ------------------------------------------------------------------
    # Windowed / SLA accounting
    # ------------------------------------------------------------------
    def windowed_miss_counts(self) -> np.ndarray:
        """Per-tenant misses per window, shape ``(W, n)``.

        Matches :func:`repro.sim.metrics.windowed_miss_counts` on the
        equivalent offline run: full windows in order, plus the current
        partial window when the request count is not a multiple of the
        window length.
        """
        if self.window is None:
            raise ValueError("ledger was created without a window")
        rows = list(self._window_rows)
        if self._t % self.window != 0:
            rows.append(self._current_window)
        if not rows:
            return np.zeros((0, self.num_users), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    def windowed_cost(self) -> float:
        """:math:`\\sum_w \\sum_i f_i(\\text{misses}_i\\text{ in }w)`."""
        per_window = self.windowed_miss_counts()
        total = 0.0
        for row in per_window:
            total += sum(
                float(self._cost_fn(i).value(int(m))) for i, m in enumerate(row)
            )
        return total

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-able state for the ``/stats`` command."""
        tenants = []
        for i in range(self.num_users):
            row: Dict[str, object] = {
                "tenant": i,
                "hits": self._hits[i],
                "misses": self._misses[i],
            }
            if self.costs is not None:
                row["cost"] = self.cost_of(i)
                row["marginal_quote"] = self.marginal_quote(i)
            tenants.append(row)
        snap: Dict[str, object] = {
            "requests": self._t,
            "hits": self.hits,
            "misses": self.misses,
            "tenants": tenants,
        }
        if self.costs is not None:
            snap["total_cost"] = self.total_cost()
        if self.window is not None:
            snap["window"] = self.window
            snap["windowed_misses"] = self.windowed_miss_counts().tolist()
        return snap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostLedger(n={self.num_users}, requests={self._t}, "
            f"misses={self.misses})"
        )


__all__ = ["CostLedger"]
