"""Replay and load-generation clients for the serving subsystem.

Three feeding modes, all preserving request order (submission order is
serving order — the server's single consumer guarantees it):

* :func:`replay` — push a :class:`~repro.sim.trace.Trace` through a
  running :class:`~repro.serve.server.CacheServer`, either **closed
  loop** (``rate=None``: keep ``pipeline`` batches in flight, as fast
  as the server absorbs them — the benchmarking mode) or **open loop**
  (``rate=r``: pace submissions to *r* requests/second, modelling a
  fixed-rate arrival process).
* :func:`replay_stream` — generate requests *live* from any
  :class:`~repro.workloads.streams.PageStream` instead of a
  pre-materialized trace: the online setting proper, with no horizon
  materialised anywhere.
* :func:`replay_tcp` — the same replay over the line-delimited JSON
  TCP front end (used by the CI smoke job).

On-disk traces replay via :func:`load_trace_file`: ``page,tenant``
CSVs — including ``.gz``-compressed ones — route through
:mod:`repro.sim.trace_io` and materialize, while columnar trace
directories (:mod:`repro.sim.colstore`) open as a
:class:`~repro.sim.colstore.TraceReader` and **stream**:
:func:`replay` feeds reader batches straight off the mmap'd segments,
so a replay's client-side footprint is bounded by the batch size, not
the trace length.

:func:`serve_trace` is the one-call convenience wrapped in
``asyncio.run``: build a server, replay a trace, stop, return the
:class:`ReplayReport`.  With ``num_shards=1`` its report is
request-for-request identical to :func:`repro.sim.engine.simulate`
(hits, misses, per-user misses) for every registered policy — the
serve↔simulate equivalence enforced by
``tests/test_serve_equivalence.py``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.obs import Observability
from repro.serve.server import CacheServer
from repro.serve.shard import PolicySpec
from repro.sim.colstore import TraceReader, is_columnar, open_trace
from repro.sim.trace import Trace
from repro.sim.trace_io import load_csv
from repro.util.rng import RandomSource, ensure_rng
from repro.util.validation import check_positive, check_positive_int
from repro.workloads.streams import PageStream


@dataclass
class ReplayReport:
    """Client-side accounting of one replay.

    ``user_misses`` is rebuilt from per-request hit flags and the
    trace's ownership map — deliberately *not* read back from the
    server, so equivalence tests compare two independent accountings.
    """

    trace_name: str
    policy: str
    num_shards: int
    requests: int
    hits: int
    misses: int
    user_misses: np.ndarray
    elapsed: float
    stats: Dict[str, object] = field(default_factory=dict)
    #: Time spent starting the server (worker-pool spawn included) and
    #: stopping it (drain + pool shutdown) when the replay went through
    #: :func:`serve_trace`; both excluded from ``elapsed``, so
    #: ``requests_per_sec`` covers the replay window only.
    startup_seconds: float = 0.0
    drain_seconds: float = 0.0
    workers: int = 1

    @property
    def requests_per_sec(self) -> float:
        """Replay-window throughput: ``elapsed`` runs from the first
        submission to the last resolved outcome — server startup and
        drain are reported separately (``startup_seconds`` /
        ``drain_seconds``), never in the denominator."""
        return self.requests / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.requests if self.requests else 0.0

    def cost(self, costs: Sequence[CostFunction]) -> float:
        """The paper's objective :math:`\\sum_i f_i(a_i)` of this replay."""
        return float(
            sum(f.value(int(m)) for f, m in zip(costs, self.user_misses))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplayReport(policy={self.policy!r}, trace={self.trace_name!r}, "
            f"misses={self.misses}/{self.requests}, "
            f"rps={self.requests_per_sec:.0f})"
        )


def _batch_views(trace: Union[Trace, TraceReader], batch: int):
    """Page-array batches in trace order: slices of the in-RAM request
    array, or zero-copy segment views off a columnar reader."""
    if isinstance(trace, Trace):
        requests = trace.requests
        for lo in range(0, requests.size, batch):
            yield requests[lo : lo + batch]
    else:
        for _t0, chunk in trace.batches(batch):
            yield chunk


async def replay(
    server: CacheServer,
    trace: Union[Trace, TraceReader],
    *,
    batch: int = 256,
    rate: Optional[float] = None,
    pipeline: int = 4,
) -> ReplayReport:
    """Feed *trace* through a started *server*, in order.

    *trace* may be an in-RAM :class:`~repro.sim.trace.Trace` or a
    columnar :class:`~repro.sim.colstore.TraceReader` — a reader is
    consumed batch-by-batch off its mmap'd segments, so the client
    never holds more than one segment resident.

    Parameters
    ----------
    batch:
        Requests per submission (amortises queue/future overhead; the
        server still applies them one by one).
    rate:
        Target requests/second (open loop); ``None`` = closed loop.
    pipeline:
        Closed-loop max batches in flight (submission stays ordered;
        this only overlaps client bookkeeping with serving).
    """
    batch = check_positive_int(batch, "batch")
    pipeline = check_positive_int(pipeline, "pipeline")
    if rate is not None:
        rate = check_positive(rate, "rate")
    owners = np.asarray(trace.owners)
    T = trace.length
    user_misses = np.zeros(max(trace.num_users, 1), dtype=np.int64)
    hits = 0

    def account(pages: np.ndarray, flags: List[bool]) -> int:
        missed = pages[~np.asarray(flags, dtype=bool)]
        if missed.size:
            np.add.at(user_misses, owners[missed], 1)
        return len(flags) - int(missed.size)

    start = time.perf_counter()
    inflight: List[tuple] = []  # (future, pages) in submission order
    sent = 0
    for pages in _batch_views(trace, batch):
        if rate is not None:
            target = start + sent / rate
            delay = target - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        fut = await server.submit_many(pages.tolist())
        inflight.append((fut, pages))
        sent += int(pages.size)
        if len(inflight) >= pipeline:
            done_fut, done_pages = inflight.pop(0)
            outcome = await done_fut
            hits += account(done_pages, outcome.hit_flags)
    for fut, pages in inflight:
        outcome = await fut
        hits += account(pages, outcome.hit_flags)
    elapsed = time.perf_counter() - start

    return ReplayReport(
        trace_name=trace.name,
        policy=server.shards.policy_name,
        num_shards=server.shards.num_shards,
        requests=T,
        hits=hits,
        misses=int(user_misses.sum()),
        user_misses=user_misses,
        elapsed=elapsed,
        stats=server.stats(),
    )


async def replay_stream(
    server: CacheServer,
    stream: PageStream,
    length: int,
    *,
    seed: RandomSource = None,
    batch: int = 256,
    rate: Optional[float] = None,
) -> ReplayReport:
    """Generate *length* requests live from *stream* and serve them.

    The stream draws pages in the server's global page space (build the
    server with ``owners`` covering ``stream.num_pages``).  Unlike
    :func:`replay` nothing is materialized up front — each batch is
    drawn only once the previous one has been accepted.
    """
    length = check_positive_int(length, "length")
    batch = check_positive_int(batch, "batch")
    if rate is not None:
        rate = check_positive(rate, "rate")
    if stream.num_pages > server.shards.num_pages:
        raise ValueError(
            f"stream pages ({stream.num_pages}) exceed the server universe "
            f"({server.shards.num_pages})"
        )
    rng = ensure_rng(seed)
    owners = server.owners
    user_misses = np.zeros(max(server.shards.num_users, 1), dtype=np.int64)
    hits = 0
    sent = 0
    start = time.perf_counter()
    while sent < length:
        n = min(batch, length - sent)
        pages = stream.sample(rng, n)
        if rate is not None:
            target = start + sent / rate
            delay = target - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        outcome = await server.request_many(pages.tolist())
        missed = pages[~np.asarray(outcome.hit_flags, dtype=bool)]
        if missed.size:
            np.add.at(user_misses, owners[missed], 1)
        hits += outcome.hits
        sent += n
    elapsed = time.perf_counter() - start
    return ReplayReport(
        trace_name=f"{type(stream).__name__.lower()}[live]",
        policy=server.shards.policy_name,
        num_shards=server.shards.num_shards,
        requests=length,
        hits=hits,
        misses=int(user_misses.sum()),
        user_misses=user_misses,
        elapsed=elapsed,
        stats=server.stats(),
    )


async def replay_tcp(
    host: str,
    port: int,
    trace: Union[Trace, TraceReader],
    *,
    batch: int = 256,
) -> Dict[str, object]:
    """Replay *trace* (in-RAM or a streaming columnar reader) over the
    TCP front end; returns the final ``/stats`` document plus
    client-side ``client_hits`` / ``client_misses`` totals (summed from
    batch responses)."""
    batch = check_positive_int(batch, "batch")
    reader, writer = await asyncio.open_connection(host, port)
    hits = misses = 0
    try:
        for chunk in _batch_views(trace, batch):
            pages = chunk.tolist()
            writer.write(
                json.dumps({"op": "batch", "pages": pages}).encode() + b"\n"
            )
            await writer.drain()
            resp = json.loads(await reader.readline())
            if not resp.get("ok"):
                raise RuntimeError(f"server error: {resp.get('error')}")
            hits += resp["hits"]
            misses += resp["misses"]
        writer.write(json.dumps({"op": "stats"}).encode() + b"\n")
        await writer.drain()
        stats_resp = json.loads(await reader.readline())
        if not stats_resp.get("ok"):
            raise RuntimeError(f"server error: {stats_resp.get('error')}")
    finally:
        writer.close()
        await writer.wait_closed()
    stats = stats_resp["stats"]
    stats["client_hits"] = hits
    stats["client_misses"] = misses
    return stats


def load_trace_file(
    path: str, name: Optional[str] = None
) -> Union[Trace, TraceReader]:
    """Load a replayable trace from disk.

    A ``page,tenant`` CSV (``.gz`` ok) materializes to a
    :class:`~repro.sim.trace.Trace`; a columnar trace directory
    (:mod:`repro.sim.colstore`) opens as a streaming
    :class:`~repro.sim.colstore.TraceReader`.
    """
    if is_columnar(path):
        return open_trace(path)
    return load_csv(path, name=name or path).trace


def serve_trace(
    trace: Union[Trace, TraceReader, str],
    policy: PolicySpec,
    k: int,
    costs: Optional[Sequence[CostFunction]] = None,
    *,
    num_shards: int = 1,
    batch: int = 256,
    rate: Optional[float] = None,
    pipeline: int = 4,
    queue_limit: int = 1024,
    tenant_inflight: Optional[int] = None,
    window: Optional[int] = None,
    policy_seed: Optional[int] = None,
    validate: bool = True,
    obs: Optional["Observability"] = None,
    monitor_every: int = 1024,
    workers: int = 1,
    transport: str = "ring",
    shm_threshold: Optional[int] = 4096,
    profile: object = None,
    trace_sample: int = 1,
    http_port: Optional[int] = None,
    http_host: str = "127.0.0.1",
    alerts: object = None,
) -> ReplayReport:
    """Build a server, replay *trace* (a :class:`Trace`, a columnar
    :class:`~repro.sim.colstore.TraceReader`, or a path to either)
    through it, stop it, and return the :class:`ReplayReport` — the
    serving counterpart of :func:`repro.sim.engine.simulate`.  A
    reader/columnar path streams: client-side memory is bounded by the
    batch size, not the trace length (offline ``requires_future``
    policies still need a materialized :class:`Trace`).  Pass ``obs``
    to run the replay under a specific telemetry bundle (the
    observability-overhead benchmarks do); ``workers > 1`` serves the
    shard set process-parallel over the given *transport* (results are
    bit-identical for any worker count and either transport);
    ``profile`` installs the sampling profiler in the parent and every
    worker, and ``trace_sample`` head-samples distributed traces to
    every *N*-th submission (see :class:`CacheServer`).  Startup
    (worker spawn) and drain are timed into the report's
    ``startup_seconds``/``drain_seconds`` and excluded from the
    throughput window.  ``http_port``/``http_host``/``alerts`` expose
    the HTTP admin plane (and optionally a custom
    :class:`~repro.obs.alerts.AlertEngine`) for the replay's lifetime —
    see :class:`CacheServer`."""
    if isinstance(trace, str):
        trace = load_trace_file(trace)

    async def _run() -> ReplayReport:
        server = CacheServer(
            policy,
            k,
            np.asarray(trace.owners),
            costs,
            num_shards=num_shards,
            queue_limit=queue_limit,
            tenant_inflight=tenant_inflight,
            window=window,
            policy_seed=policy_seed,
            trace=trace if isinstance(trace, Trace) else None,
            horizon=trace.length,
            validate=validate,
            obs=obs,
            monitor_every=monitor_every,
            workers=workers,
            transport=transport,
            shm_threshold=shm_threshold,
            profile=profile,
            trace_sample=trace_sample,
            http_port=http_port,
            http_host=http_host,
            alerts=alerts,
        )
        t0 = time.perf_counter()
        await server.start()
        t_started = time.perf_counter()
        try:
            report = await replay(
                server, trace, batch=batch, rate=rate, pipeline=pipeline
            )
        finally:
            t_drain = time.perf_counter()
            await server.stop()
            drain_seconds = time.perf_counter() - t_drain
        report.startup_seconds = t_started - t0
        report.drain_seconds = drain_seconds
        report.workers = server.workers
        return report

    return asyncio.run(_run())


__all__ = [
    "ReplayReport",
    "replay",
    "replay_stream",
    "replay_tcp",
    "load_trace_file",
    "serve_trace",
]
