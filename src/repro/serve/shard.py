"""Shard management for the serving subsystem.

A :class:`CacheShard` is a *stepwise* cache: the reference engine's
miss mechanics (:func:`repro.sim.engine._simulate_reference`) unrolled
into a ``serve(page, t)`` call so requests can arrive one at a time
from a live stream instead of a pre-materialized
:class:`~repro.sim.trace.Trace`.  A :class:`ShardManager` hash-
partitions the page universe across ``S`` independent shards, each
owning a private policy instance and ``k/S`` slots, so victim choices
never cross shard boundaries and per-shard state stays small.

Determinism contract (enforced by ``tests/test_serve_equivalence.py``):
with ``num_shards=1`` the manager IS the reference engine — same
victim choices, same per-tenant miss counts, request for request — for
every registered policy, because the single shard sees the identical
``(page, t)`` sequence under an identical :class:`~repro.sim.policy.
SimContext`.  Stochastic policies are seeded per shard as
``policy_seed + shard_id`` so shard 0 reproduces a
``factory(rng=policy_seed)`` run exactly.

Pages are assigned to shards by a splitmix64-style integer hash (not
``page % S``): workload builders allocate tenants contiguous page
ranges, and a modulo split would alias tenant locality into shard
imbalance.
"""

from __future__ import annotations

import inspect
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.obs.flight import FlightRecorder, has_budget_probe, record_miss
from repro.sim.policy import EvictionPolicy, SimContext
from repro.sim.trace import Trace
from repro.util.validation import check_positive_int

_MASK64 = (1 << 64) - 1

PolicySpec = Union[str, EvictionPolicy, Callable[..., EvictionPolicy]]


def page_hash(page: int) -> int:
    """Splitmix64 finalizer — the shard-placement hash.

    Stable across processes and Python versions (unlike builtin
    ``hash``), so a trace replays onto the same shard layout anywhere.
    """
    x = (page + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def page_hash_array(pages: np.ndarray) -> np.ndarray:
    """Vectorized :func:`page_hash` over an integer array.

    Element-for-element identical to the scalar hash (test-enforced),
    so batch routing tables and per-request lookups always agree.
    """
    x = np.asarray(pages).astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def shard_slots(k: int, num_shards: int) -> List[int]:
    """Per-shard slot allocation: ``k // S`` each, the ``k % S``
    remainder going to low shard ids first (sums to ``k``)."""
    base, extra = divmod(int(k), int(num_shards))
    return [base + (1 if sid < extra else 0) for sid in range(num_shards)]


def make_policy_instance(
    factory: Callable[..., EvictionPolicy], seed: Optional[int]
) -> EvictionPolicy:
    """Instantiate *factory*, passing ``rng=seed`` when it accepts one.

    The same convention as the engine-equivalence suite and
    ``sim.driver``: deterministic policies ignore the seed, stochastic
    ones (random, rand-marking) draw their stream from it.
    """
    if seed is not None:
        try:
            params = inspect.signature(factory).parameters
        except (TypeError, ValueError):
            params = {}
        if "rng" in params:
            return factory(rng=seed)
    return factory()


def build_policy_instances(
    policy: PolicySpec, num_shards: int, policy_seed: Optional[int]
) -> List[EvictionPolicy]:
    """One policy instance per shard from a spec (name/factory/instance).

    Shared by :class:`ShardManager` and the process-parallel
    :class:`~repro.serve.workers.ShardWorkerPool` workers, so both
    paths build byte-identical instances: shard *i* of a stochastic
    policy always draws from ``rng=policy_seed + i``.
    """
    if isinstance(policy, EvictionPolicy):
        if num_shards != 1:
            raise ValueError(
                "a pre-built policy instance cannot be shared across shards; "
                "pass a name or factory for num_shards > 1"
            )
        return [policy]
    if isinstance(policy, str):
        from repro.policies import POLICY_REGISTRY

        try:
            factory: Callable[..., EvictionPolicy] = POLICY_REGISTRY[policy]
        except KeyError:
            known = ", ".join(sorted(POLICY_REGISTRY))
            raise KeyError(
                f"unknown policy {policy!r}; known: {known}"
            ) from None
    else:
        factory = policy
    return [
        make_policy_instance(
            factory, None if policy_seed is None else policy_seed + sid
        )
        for sid in range(num_shards)
    ]


class CacheShard:
    """One policy instance plus the engine's miss mechanics, stepwise.

    The shard owns residency (a ``set``) and capacity enforcement;
    the policy only picks victims — exactly the engine/policy split of
    :mod:`repro.sim.engine`, so any registered policy serves unchanged.
    """

    __slots__ = (
        "shard_id",
        "policy",
        "slots",
        "cache",
        "_ctx",
        "_validate",
        "evictions",
        "timing",
        "flight",
        "_fl_owners",
        "_fl_budgets",
    )

    def __init__(
        self,
        shard_id: int,
        policy: EvictionPolicy,
        slots: int,
        ctx: SimContext,
        validate: bool = True,
    ) -> None:
        self.shard_id = shard_id
        self.policy = policy
        self.slots = check_positive_int(slots, "slots")
        self.cache: set[int] = set()
        self._ctx = ctx
        self._validate = validate
        #: Lifetime evictions (observability counter; never read by the
        #: policy, so equivalence with the engine is untouched).
        self.evictions = 0
        #: ``[seconds, calls]`` accumulator for ``choose_victim`` when a
        #: server enables decision timing; ``None`` keeps the hot path
        #: branch-free beyond one identity check.
        self.timing: Optional[List[float]] = None
        #: Attached :class:`~repro.obs.flight.FlightRecorder`; ``None``
        #: keeps the hot path at a single identity check per request.
        self.flight: Optional[FlightRecorder] = None
        self._fl_owners: Optional[List[int]] = None
        self._fl_budgets = False
        policy.reset(ctx)

    def attach_flight(
        self,
        recorder: FlightRecorder,
        owners_list: Optional[List[int]] = None,
    ) -> None:
        """Start appending one decision event per served request.

        *owners_list* lets a server share one materialized
        ``owners.tolist()`` across shards instead of converting per
        shard.
        """
        self.flight = recorder
        self._fl_owners = (
            owners_list if owners_list is not None else self._ctx.owners.tolist()
        )
        recorder.bind(self._fl_owners)
        self._fl_budgets = has_budget_probe(self.policy)

    def detach_flight(self) -> None:
        """Stop recording (the recorder keeps its window)."""
        self.flight = None

    def reset(self) -> None:
        """Empty the shard and return the policy to its initial state."""
        self.cache.clear()
        self.evictions = 0
        if self.timing is not None:
            self.timing[0] = 0.0
            self.timing[1] = 0
        self.policy.reset(self._ctx)

    def serve(self, page: int, t: int) -> Tuple[bool, Optional[int]]:
        """Serve one request at (global) time *t*.

        Returns ``(hit, victim)`` where *victim* is the page evicted to
        admit *page* (``None`` on hits and on misses with free slots).
        Mechanics mirror the reference engine loop line for line.
        """
        cache = self.cache
        policy = self.policy
        fl = self.flight
        if page in cache:
            policy.on_hit(page, t)
            if fl is not None:
                fl.append((t, page, self.shard_id))
            return True, None
        if len(cache) < self.slots:
            cache.add(page)
            policy.on_insert(page, t)
            if fl is not None:
                record_miss(
                    fl.append, policy, self._fl_budgets,
                    self._fl_owners[page], t, page, self.shard_id, None, None,
                )
            return False, None
        timing = self.timing
        if timing is None:
            victim = policy.choose_victim(page, t)
        else:
            t0 = perf_counter()
            victim = policy.choose_victim(page, t)
            timing[0] += perf_counter() - t0
            timing[1] += 1
        if self._validate:
            if victim not in cache:
                raise RuntimeError(
                    f"{policy.name} evicted non-resident page {victim} at t={t}"
                )
            if victim == page:
                raise RuntimeError(
                    f"{policy.name} evicted the requested page {page} at t={t}"
                )
        b_before = (
            float(policy.budget_of(victim))
            if fl is not None and self._fl_budgets
            else None
        )
        cache.remove(victim)
        policy.on_evict(victim, t)
        cache.add(page)
        policy.on_insert(page, t)
        self.evictions += 1
        if fl is not None:
            record_miss(
                fl.append, policy, self._fl_budgets,
                self._fl_owners[page], t, page, self.shard_id, victim, b_before,
            )
        return False, victim

    @property
    def occupancy(self) -> int:
        return len(self.cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheShard(id={self.shard_id}, policy={self.policy.name!r}, "
            f"{len(self.cache)}/{self.slots})"
        )


class ShardManager:
    """Hash-partition pages across ``S`` independent policy shards.

    Parameters
    ----------
    policy:
        A registry name (``"lru"``), a policy factory, or — only with
        ``num_shards=1`` — an already-built :class:`EvictionPolicy`
        instance.
    num_shards:
        ``S >= 1``; requires ``k >= S`` so every shard has a slot.
    k:
        Total cache capacity; shard *i* gets ``k//S`` slots plus one of
        the ``k % S`` remainder slots (low shard ids first).
    owners:
        Page-ownership array (the trace's ``owners``), defining the
        page universe and tenant count.
    costs:
        Per-tenant cost functions; required by ``requires_costs``
        policies, optional otherwise.
    policy_seed:
        Base seed for stochastic policies: shard *i*'s instance is
        built with ``rng=policy_seed + i``.
    trace:
        Full trace, needed only by ``requires_future`` policies
        (Belady) — and those are restricted to ``num_shards=1``, since
        shard-local victim choices against global request times are
        only coherent when the shard sees the whole sequence.
    horizon:
        Upper bound on requests served (sizes ALG-CONT's dual ledger);
        pass the trace length when replaying.
    validate:
        Check victims are resident (disable in throughput benchmarks).
    """

    def __init__(
        self,
        policy: PolicySpec,
        num_shards: int,
        k: int,
        owners: np.ndarray,
        costs: Optional[Sequence[CostFunction]] = None,
        *,
        policy_seed: Optional[int] = None,
        trace: Optional[Trace] = None,
        horizon: int = 0,
        validate: bool = True,
    ) -> None:
        self.num_shards = check_positive_int(num_shards, "num_shards")
        self.k = check_positive_int(k, "k")
        if self.k < self.num_shards:
            raise ValueError(
                f"k={k} cannot fill {num_shards} shards (need k >= num_shards)"
            )
        owners = np.ascontiguousarray(np.asarray(owners, dtype=np.int64))
        if owners.ndim != 1 or owners.size == 0:
            raise ValueError("owners must be a non-empty 1-D array")
        self.owners = owners
        self.num_pages = int(owners.size)
        self.num_users = int(owners.max()) + 1
        self.costs = costs

        instances = self._build_instances(policy, policy_seed)
        self.policy_name = instances[0].name
        if instances[0].requires_costs and costs is None:
            raise ValueError(f"{self.policy_name} requires cost functions")
        if costs is not None and len(costs) < self.num_users:
            raise ValueError(
                f"need {self.num_users} cost functions, got {len(costs)}"
            )
        if instances[0].requires_future:
            if trace is None:
                raise ValueError(
                    f"{self.policy_name} requires the full trace (offline policy)"
                )
            if self.num_shards != 1:
                raise ValueError(
                    "offline (requires_future) policies only serve with num_shards=1"
                )

        slots = shard_slots(self.k, self.num_shards)
        self.shards: List[CacheShard] = []
        for sid, inst in enumerate(instances):
            ctx = SimContext(
                k=slots[sid],
                owners=owners,
                num_users=self.num_users,
                costs=costs,
                trace=trace if inst.requires_future else None,
                num_pages=self.num_pages,
                horizon=horizon,
            )
            self.shards.append(
                CacheShard(sid, inst, ctx.k, ctx, validate=validate)
            )

    def _build_instances(
        self, policy: PolicySpec, policy_seed: Optional[int]
    ) -> List[EvictionPolicy]:
        return build_policy_instances(policy, self.num_shards, policy_seed)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def shard_of(self, page: int) -> int:
        """Shard id owning *page* (stable splitmix64 hash)."""
        if self.num_shards == 1:
            return 0
        return page_hash(page) % self.num_shards

    def serve(self, page: int, t: int) -> Tuple[bool, Optional[int], int]:
        """Route one request; returns ``(hit, victim, shard_id)``."""
        sid = self.shard_of(page)
        hit, victim = self.shards[sid].serve(page, t)
        return hit, victim, sid

    def reset(self) -> None:
        for shard in self.shards:
            shard.reset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> List[int]:
        """Resident pages per shard."""
        return [shard.occupancy for shard in self.shards]

    def capacities(self) -> List[int]:
        """Slot allocation per shard (sums to ``k``)."""
        return [shard.slots for shard in self.shards]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardManager(policy={self.policy_name!r}, S={self.num_shards}, "
            f"k={self.k}, pages={self.num_pages})"
        )


__all__ = [
    "CacheShard",
    "ShardManager",
    "build_policy_instances",
    "page_hash",
    "page_hash_array",
    "make_policy_instance",
    "shard_slots",
]
