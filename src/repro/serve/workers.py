"""Process-parallel shard workers with batched zero-copy routing.

The single-consumer server (:mod:`repro.serve.server`) applies every
request sequentially, so the S-way page→shard split of
:class:`~repro.serve.shard.ShardManager` never uses more than one
core.  :class:`ShardWorkerPool` lifts the same shard set onto ``W``
OS processes: shard ``s`` is owned by worker ``s % W``, and each
worker holds its shard group's **policy instances**, a **ledger
slice** (per-tenant hit/miss counters plus global-window miss bins),
an optional **flight recorder**, **invariant monitor**, and the
per-shard decision timers the metrics scrape reads.

Determinism is by construction, not by luck: the ingress side assigns
every request its **global clock value** ``t`` before routing, and a
shard's subsequence is applied in submission order by exactly one
worker — so every policy sees the identical ``(page, t)`` stream it
would see in-process, and serving results are bit-for-bit independent
of ``W`` (test-enforced by ``tests/test_serve_equivalence.py``).

Routing is batched and buffer-flat.  A precomputed page→worker table
(the vectorized splitmix64 hash of the whole page universe) splits a
submission into per-worker position/page arrays, and each worker
receives **one exchange per batch** — never one pickle per request,
and on the hot path never a pickle at all:

* ``transport="ring"`` (the default) — each worker owns one
  **persistent shared-memory ring** created lazily at first use and
  grown in place on demand.  Batches are framed directly into the
  ring's data region (``[nbytes][t0][n][pages int64*n][pos int32*n]``,
  8-aligned), the pipe carries only a **9-byte doorbell** naming the
  record's ring offset, and the worker frames its hit flags into the
  reply region the same way.  No allocation and no serialization per
  batch on either side.
* ``transport="pipe"`` — batches are framed into a **preallocated
  per-worker staging buffer** (same record layout) and sent as one
  ``send_bytes`` payload; batches at or above ``shm_threshold``
  requests still go through the ring.  This is the fallback for
  platforms where POSIX shared memory is unavailable, and the
  reference point for the ring-vs-pipe invariance tests.

Pipes remain the **control plane** in both modes: construction
handshake, detail/snapshot/flight gathers, ring (re)announcements,
and shutdown ride pickled control frames; data exchanges never do.

Exchanges are strictly synchronous request/reply per worker, and both
the serve consumer's ``_process`` and the scrape paths run without
awaiting — under asyncio's single thread that means data and control
messages can never interleave on a pipe, so the protocol needs no
locks, and a ring never holds more than one record in flight (the
cursors still advance ring-style so the layout is general).

Scrape-time merging mirrors the in-process design ("exactness via
scrape-time collectors", DESIGN.md): workers report ground truth —
ledger slices, shard occupancy/evictions, decision timers, monitor
flags — and :meth:`ShardWorkerPool.snapshot` merges them into the
same document shapes the local path produces, so ``stats`` /
``metrics`` / ``audit`` output is schema-identical at any ``W``.
Windowed SLA rows stay exact because workers bin misses by the
*global* window index ``t // window`` and the merge sums bins.

Worker death is detected, not hung on: every reply wait polls the
pipe with a bounded timeout and checks the process, raising
:class:`WorkerCrashed` (a :class:`~repro.serve.server.ServerClosed`)
so the consumer can fail pending futures and auto-dump the surviving
workers' flight windows.
"""

from __future__ import annotations

import heapq
import pickle
import struct
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.serve.server import ServerClosed
from repro.serve.shard import (
    CacheShard,
    PolicySpec,
    build_policy_instances,
    page_hash_array,
    shard_slots,
)
from repro.sim.policy import SimContext
from repro.sim.trace import Trace
from repro.util.validation import check_positive_int


class WorkerCrashed(ServerClosed):
    """A shard worker process died (or its pipe broke) mid-protocol."""


#: Seconds between liveness checks while waiting on a worker reply.
_POLL_INTERVAL = 0.1

#: Worker transports accepted by :class:`ShardWorkerPool`.
TRANSPORTS = ("ring", "pipe")

# --- Ring block layout -------------------------------------------------
# [0]  magic                 [8]  data_cap   [16] reply_cap
# [24] next data offset (parent, debug)
# [40] next reply offset (worker, debug)
# [64, 64+data_cap)              data records (parent -> worker)
# [64+data_cap, +reply_cap)      reply records (worker -> parent)
# Records are 8-aligned ([nbytes:int64][payload...]) and never wrap: a
# record that does not fit at the current offset restarts at the region
# base.  The record's offset rides the 1-byte doorbell / reply frame on
# the pipe, so reader position never depends on ring state — exchanges
# are strictly synchronous (one outstanding record per direction), and
# the header offsets exist for post-mortem inspection only.
_RING_MAGIC = 0x52504C52494E4731  # "RPLRING1"
_RING_HEADER = 64
# Data record header carries the distributed-tracing span context as
# two extra int64 words (repro.obs.distrib): trace_id (0 = unsampled)
# and the parent span id.  The layout is identical whether tracing is
# on or off, so the hot path never branches on wire format.
_DATA_REC_HEADER = 40  # nbytes + t0 + n + trace_id + parent_span
_REPLY_REC_HEADER = 16  # nbytes + n
_DEFAULT_DATA_CAP = 1 << 20
_DEFAULT_REPLY_CAP = 1 << 17

#: Pipe-transport data frame: tag byte + 7 pad (8-aligns the payload
#: within the frame) + t0 + n + trace_id + parent_span, then pages/pos.
_PIPE_HDR = 40


def _pad8(n: int) -> int:
    return (n + 7) & ~7


def _data_record_bytes(m: int) -> int:
    return _pad8(_DATA_REC_HEADER + 12 * m)


def _reply_record_bytes(m: int) -> int:
    return _pad8(_REPLY_REC_HEADER + m)


@dataclass
class WorkerSpec:
    """Everything a worker needs to rebuild its shard group.

    Picklable whenever the policy spec is (registry names always are),
    so the pool works under the ``spawn`` start method too; under
    ``fork`` the spec simply rides process inheritance.
    """

    worker_id: int
    num_workers: int
    shard_ids: Tuple[int, ...]
    policy: PolicySpec
    num_shards: int
    k: int
    owners: np.ndarray
    costs: Optional[Sequence[CostFunction]]
    policy_seed: Optional[int]
    trace: Optional[Trace]
    horizon: int
    validate: bool
    window: Optional[int]
    num_users: int
    timing: bool = False
    flight_capacity: int = 0
    flight_meta: Dict[str, object] = field(default_factory=dict)
    monitor: bool = False
    monitor_every: int = 0
    #: Parent's --trace-jsonl base path; the worker spills its spans to
    #: ``distrib.spill_path(trace_jsonl, worker_id + 1)``.
    trace_jsonl: Optional[str] = None
    #: ``repro.obs.prof.profile_spec`` dict ({"interval": s}) or None.
    profile: Optional[Dict[str, object]] = None


class _WorkerState:
    """The per-process serving state (lives only inside a worker)."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        owners = spec.owners
        num_pages = int(owners.size)
        instances = build_policy_instances(
            spec.policy, spec.num_shards, spec.policy_seed
        )
        # Mirror ShardManager's spec validation so misconfiguration is
        # reported through the construction handshake, not a dead worker.
        if instances[0].requires_costs and spec.costs is None:
            raise ValueError(f"{instances[0].name} requires cost functions")
        if instances[0].requires_future:
            if spec.trace is None:
                raise ValueError(
                    f"{instances[0].name} requires the full trace "
                    f"(offline policy)"
                )
            if spec.num_shards != 1:
                raise ValueError(
                    "offline (requires_future) policies only serve with "
                    "num_shards=1"
                )
        slots = shard_slots(spec.k, spec.num_shards)
        self.owners_list: List[int] = owners.tolist()
        self.shards: Dict[int, CacheShard] = {}
        for sid in spec.shard_ids:
            inst = instances[sid]
            ctx = SimContext(
                k=slots[sid],
                owners=owners,
                num_users=spec.num_users,
                costs=spec.costs,
                trace=spec.trace if inst.requires_future else None,
                num_pages=num_pages,
                horizon=spec.horizon,
            )
            shard = CacheShard(sid, inst, slots[sid], ctx, validate=spec.validate)
            if spec.timing:
                shard.timing = [0.0, 0]
            self.shards[sid] = shard
        #: page → shard id over the whole universe (vectorized hash,
        #: identical to ``ShardManager.shard_of`` by construction).
        if spec.num_shards == 1:
            self.shard_table = np.zeros(num_pages, dtype=np.int64)
        else:
            self.shard_table = (
                page_hash_array(np.arange(num_pages, dtype=np.int64))
                % np.uint64(spec.num_shards)
            ).astype(np.int64)
        # Ledger slice: plain lists (the in-process CostLedger idiom),
        # plus global-window miss bins keyed by t // window.
        n = spec.num_users
        self.hits: List[int] = [0] * n
        self.misses: List[int] = [0] * n
        self.window_bins: Dict[int, List[int]] = {}
        self.served = 0
        # Flight recorder for this worker's shards only: times are the
        # global clock, so windows are sparse (dense=False in meta)
        # unless the pool runs a single worker.
        self.flight = None
        if spec.flight_capacity > 0:
            from repro.obs.flight import FlightRecorder

            self.flight = FlightRecorder(capacity=spec.flight_capacity)
            for shard in self.shards.values():
                shard.attach_flight(self.flight, self.owners_list)
            self.flight.note_config(
                worker=spec.worker_id,
                shard_ids=list(spec.shard_ids),
                dense=(spec.num_workers == 1),
                **spec.flight_meta,
            )
        self.monitor = None
        self._since_monitor = 0
        if spec.monitor and spec.monitor_every > 0 and spec.costs is not None:
            from repro.obs.monitor import InvariantMonitor

            self.monitor = InvariantMonitor(spec.costs)
        # Distributed tracing: spans spill to a worker-local JSONL file
        # (namespaced ids, see repro.obs.distrib); the parent merges
        # the files after the run.
        self.tracer = None
        self._span_ids = None
        self._emit_span = None
        if spec.trace_jsonl:
            from repro.obs.distrib import emit_span, span_ids, spill_path
            from repro.obs.tracing import JsonlSink, Tracer

            self.tracer = Tracer(
                JsonlSink(spill_path(spec.trace_jsonl, spec.worker_id + 1))
            )
            self._span_ids = span_ids(spec.worker_id + 1)
            self._emit_span = emit_span
        self.profiler = None
        if spec.profile:
            from repro.obs.prof import DEFAULT_INTERVAL, SamplingProfiler

            self.profiler = SamplingProfiler(
                float(spec.profile.get("interval", DEFAULT_INTERVAL))
            ).start()

    # ------------------------------------------------------------------
    def apply(
        self,
        pages: List[int],
        ts: List[int],
        trace_id: int = 0,
        parent: int = 0,
    ) -> bytearray:
        """Serve one routed batch; returns per-request hit flags."""
        t_trace = 0
        if trace_id and self.tracer is not None:
            t_trace = time.perf_counter_ns()
        shard_ids = self.shard_table[np.asarray(pages, dtype=np.int64)].tolist()
        shards = self.shards
        owners = self.owners_list
        hits = self.hits
        misses = self.misses
        window = self.spec.window
        bins = self.window_bins
        n_users = self.spec.num_users
        flags = bytearray(len(pages))
        for i, page in enumerate(pages):
            hit, _victim = shards[shard_ids[i]].serve(page, ts[i])
            tenant = owners[page]
            if hit:
                flags[i] = 1
                hits[tenant] += 1
            else:
                misses[tenant] += 1
                if window is not None:
                    row = bins.get(ts[i] // window)
                    if row is None:
                        row = bins[ts[i] // window] = [0] * n_users
                    row[tenant] += 1
        self.served += len(pages)
        self._maybe_monitor(len(pages), ts[-1] + 1 if ts else 0)
        if t_trace:
            self._emit_span(  # type: ignore[misc]
                self.tracer,
                "worker.apply",
                (time.perf_counter_ns() - t_trace) * 1e-9,
                trace_id=trace_id,
                span_id=next(self._span_ids),  # type: ignore[arg-type]
                parent_id=parent,
                w=self.spec.worker_id,
                n=len(pages),
            )
        return flags

    def apply_detail(
        self, pages: List[int], ts: List[int]
    ) -> List[Tuple[bool, Optional[int], int]]:
        """Serve one routed batch keeping per-request victims."""
        out: List[Tuple[bool, Optional[int], int]] = []
        shard_ids = self.shard_table[np.asarray(pages, dtype=np.int64)].tolist()
        for i, page in enumerate(pages):
            sid = shard_ids[i]
            hit, victim = self.shards[sid].serve(page, ts[i])
            tenant = self.owners_list[page]
            if hit:
                self.hits[tenant] += 1
            else:
                self.misses[tenant] += 1
                window = self.spec.window
                if window is not None:
                    row = self.window_bins.setdefault(
                        ts[i] // window, [0] * self.spec.num_users
                    )
                    row[tenant] += 1
            out.append((hit, victim, sid))
        self.served += len(pages)
        self._maybe_monitor(len(pages), ts[-1] + 1 if ts else 0)
        return out

    def _maybe_monitor(self, n: int, t: int) -> None:
        """Sample the invariant monitor every ``monitor_every / W`` of
        this worker's *own* requests — each worker sees ~1/W of the
        stream, so the global sampling cadence matches in-process
        serving."""
        if self.monitor is None:
            return
        self._since_monitor += n
        if self._since_monitor >= max(
            1, self.spec.monitor_every // max(1, self.spec.num_workers)
        ):
            self._since_monitor = 0
            self.monitor.sample(
                t,
                self.misses,
                policies=[s.policy for s in self.shards.values()],
            )

    def snapshot(self) -> Dict[str, object]:
        """Ground-truth state for the parent's scrape-time merge."""
        snap: Dict[str, object] = {
            "worker": self.spec.worker_id,
            "served": self.served,
            "hits": list(self.hits),
            "misses": list(self.misses),
            "window_bins": {k: list(v) for k, v in self.window_bins.items()},
            "shards": [
                {
                    "shard": sid,
                    "occupancy": shard.occupancy,
                    "slots": shard.slots,
                    "evictions": shard.evictions,
                    "timing": list(shard.timing) if shard.timing else None,
                }
                for sid, shard in sorted(self.shards.items())
            ],
            "monitor_flags": 0,
            "monitor_samples": 0,
            "flight_len": len(self.flight) if self.flight else 0,
        }
        if self.monitor is not None:
            snap["monitor_flags"] = len(self.monitor.flags)
            snap["monitor_samples"] = len(self.monitor.samples)
            snap["monitor_summary"] = self.monitor.summary()
        return snap

    def flight_window(self) -> Tuple[Dict[str, object], List[tuple]]:
        if self.flight is None:
            return {}, []
        return dict(self.flight.meta), list(self.flight.ring)

    def profile_folded(self) -> Optional[Dict[str, int]]:
        """This worker's folded-stack counts (None when not profiling)."""
        if self.profiler is None:
            return None
        return self.profiler.folded()

    def close(self) -> None:
        """Stop the profiler and flush/close the span spill (idempotent)."""
        if self.profiler is not None:
            self.profiler.stop()
        if self.tracer is not None:
            self.tracer.close()
            self.tracer = None


class _WorkerRing:
    """Worker-side view of the shared ring (read data, write replies)."""

    def __init__(self, name: str) -> None:
        from multiprocessing import shared_memory

        # Attaching re-registers the segment with the resource tracker,
        # but workers share the parent's tracker process (its fd rides
        # both fork and spawn), so the duplicate collapses in the
        # tracker's name set and the parent's unlink stays the one
        # true unregister — do NOT unregister here, that would strip
        # the parent's entry and make its unlink a tracker error.
        self.shm = shared_memory.SharedMemory(name=name)
        buf = self.shm.buf
        magic, self.data_cap, self.reply_cap = struct.unpack_from("<qqq", buf, 0)
        if magic != _RING_MAGIC:
            raise ValueError(f"bad ring magic {magic:#x}")
        self.buf = buf
        self.reply_off = 0

    def read_batch(self, off: int) -> Tuple[int, List[int], List[int], int, int]:
        """Decode the data record at region offset *off* (from the
        doorbell frame)."""
        buf = self.buf
        base = _RING_HEADER + off
        t0, m, trace_id, parent = struct.unpack_from("<qqqq", buf, base + 8)
        pages = np.frombuffer(
            buf, dtype=np.int64, count=m, offset=base + _DATA_REC_HEADER
        ).tolist()
        pos = np.frombuffer(
            buf, dtype=np.int32, count=m,
            offset=base + _DATA_REC_HEADER + 8 * m,
        ).tolist()
        return t0, pages, pos, trace_id, parent

    def write_reply(self, flags: bytearray) -> int:
        """Frame the hit flags into the reply region; returns the
        record's offset (sent back on the reply frame)."""
        m = len(flags)
        nbytes = _reply_record_bytes(m)
        off = self.reply_off
        if off + nbytes > self.reply_cap:  # restart at the region base
            off = 0
        base = _RING_HEADER + self.data_cap + off
        struct.pack_into("<qq", self.buf, base, nbytes, m)
        self.buf[base + _REPLY_REC_HEADER : base + _REPLY_REC_HEADER + m] = flags
        self.reply_off = off + nbytes
        struct.pack_into("<q", self.buf, 40, self.reply_off)
        return off

    def close(self) -> None:
        self.buf = None
        self.shm.close()


def _worker_main(conn, spec: WorkerSpec) -> None:
    """Worker process entry point: build the shard group, serve the
    frame protocol until told to close.  Any build/serve exception is
    reported back (pickled ``"err"`` for control ops, a ``b"E"`` frame
    for data ops) instead of dying silently."""
    import signal

    try:  # the parent owns shutdown; workers ignore terminal SIGINT
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    ring: Optional[_WorkerRing] = None
    try:
        state = _WorkerState(spec)
        conn.send(("ready", spec.worker_id))
    except Exception as exc:  # noqa: BLE001 - surfaced to the parent
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    reply_kind = "pickle"
    try:
        while True:
            frame = conn.recv_bytes()
            tag = frame[:1]
            if tag == b"g":  # ring doorbell: batch is in the data ring
                reply_kind = "bytes"
                if ring is None:
                    raise RuntimeError("ring doorbell before ring announce")
                off = struct.unpack_from("<q", frame, 1)[0]
                t0, pages, pos, trace_id, parent = ring.read_batch(off)
                flags = state.apply(
                    pages, [t0 + p for p in pos], trace_id, parent
                )
                roff = ring.write_reply(flags)
                conn.send_bytes(b"r" + struct.pack("<q", roff))
            elif tag == b"p":  # pipe-framed batch
                reply_kind = "bytes"
                t0, m, trace_id, parent = struct.unpack_from("<qqqq", frame, 8)
                pages = np.frombuffer(
                    frame, dtype=np.int64, count=m, offset=_PIPE_HDR
                ).tolist()
                pos = np.frombuffer(
                    frame, dtype=np.int32, count=m, offset=_PIPE_HDR + 8 * m
                ).tolist()
                flags = state.apply(
                    pages, [t0 + p for p in pos], trace_id, parent
                )
                conn.send_bytes(b"F" + bytes(flags))
            elif tag == b"!":  # control op (pickled)
                reply_kind = "pickle"
                msg = pickle.loads(frame[1:])
                op = msg[0]
                if op == "d":  # apply with per-request detail
                    _, t0, pos_b, pages_b = msg
                    pos = np.frombuffer(pos_b, dtype=np.int32).tolist()
                    pages = np.frombuffer(pages_b, dtype=np.int64).tolist()
                    conn.send(state.apply_detail(pages, [t0 + p for p in pos]))
                elif op == "s":  # snapshot (scrape-time gather)
                    conn.send(state.snapshot())
                elif op == "f":  # flight window gather
                    conn.send(state.flight_window())
                elif op == "prof":  # folded-stack profile gather
                    conn.send(state.profile_folded())
                elif op == "ring":  # (re)announce the shared ring block
                    if ring is not None:
                        ring.close()
                    ring = _WorkerRing(msg[1])
                    conn.send(("ok",))
                elif op == "c":  # close
                    state.close()
                    conn.send(("bye", state.served))
                    return
                else:  # pragma: no cover - protocol bug guard
                    conn.send(("err", f"unknown op {op!r}"))
            else:  # pragma: no cover - protocol bug guard
                reply_kind = "bytes"
                conn.send_bytes(b"E" + f"unknown tag {tag!r}".encode())
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    except Exception as exc:  # noqa: BLE001 - surfaced to the parent
        msg = f"{type(exc).__name__}: {exc}"
        try:
            if reply_kind == "bytes":
                conn.send_bytes(b"E" + msg.encode())
            else:
                conn.send(("err", msg))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            state.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        if ring is not None:
            ring.close()
        conn.close()


class ShardWorkerPool:
    """Partition ``S`` shards across ``W`` worker processes.

    Parameters mirror :class:`~repro.serve.shard.ShardManager` (the
    worker side rebuilds the identical shard set); pool-specific knobs:

    num_workers:
        Requested worker processes; clamped to ``num_shards`` (a shard
        is owned by exactly one worker).
    timing:
        Enable per-shard ``choose_victim`` timers (obs-active servers).
    flight_capacity / flight_meta:
        Per-worker flight recorder ring size (0 = off) and the config
        noted on each window.
    monitor / monitor_every:
        Attach per-worker invariant monitors sampling each worker's own
        policies every ``monitor_every // W`` of its requests.
    transport:
        ``"ring"`` (default) exchanges every batch through the
        persistent per-worker shared-memory ring; ``"pipe"`` frames
        batches into a preallocated staging buffer sent over the pipe,
        escalating to the ring at ``shm_threshold`` requests.  Results
        are bit-identical either way (test-enforced).
    shm_threshold:
        Pipe-transport only: per-worker batch size (requests) at or
        above which the exchange goes through the ring anyway;
        ``None`` keeps everything on the pipe.  Ignored under
        ``transport="ring"``.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (policy factories need not pickle), else ``spawn``.
    """

    def __init__(
        self,
        policy: PolicySpec,
        num_workers: int,
        num_shards: int,
        k: int,
        owners: np.ndarray,
        costs: Optional[Sequence[CostFunction]] = None,
        *,
        policy_seed: Optional[int] = None,
        trace: Optional[Trace] = None,
        horizon: int = 0,
        validate: bool = True,
        window: Optional[int] = None,
        timing: bool = False,
        flight_capacity: int = 0,
        flight_meta: Optional[Dict[str, object]] = None,
        monitor: bool = False,
        monitor_every: int = 0,
        transport: str = "ring",
        shm_threshold: Optional[int] = None,
        start_method: Optional[str] = None,
        name: str = "pool",
        trace_jsonl: Optional[str] = None,
        profile: Optional[Dict[str, object]] = None,
    ) -> None:
        import multiprocessing as mp

        num_workers = check_positive_int(num_workers, "num_workers")
        num_shards = check_positive_int(num_shards, "num_shards")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        self.name = name
        self.num_shards = num_shards
        self.transport = transport
        #: Effective worker count (a shard is never split).
        self.num_workers = min(num_workers, num_shards)
        self.num_users = int(np.asarray(owners).max()) + 1
        owners = np.ascontiguousarray(np.asarray(owners, dtype=np.int64))
        num_pages = int(owners.size)
        if shm_threshold is not None:
            shm_threshold = check_positive_int(shm_threshold, "shm_threshold")
        self._shm_threshold = shm_threshold
        #: page → worker routing table (uint8: W <= 255 by construction).
        if num_shards == 1:
            shard_table = np.zeros(num_pages, dtype=np.int64)
        else:
            shard_table = (
                page_hash_array(np.arange(num_pages, dtype=np.int64))
                % np.uint64(num_shards)
            ).astype(np.int64)
        self._page_worker = (shard_table % self.num_workers).astype(np.uint8)

        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self._conns = []
        self._procs = []
        #: Per-worker ring state: {block, data_cap, reply_cap, head,
        #: reply_tail}; created lazily on first use, grown in place.
        self._rings: List[Optional[Dict[str, object]]] = (
            [None] * self.num_workers
        )
        #: Per-worker pipe-transport staging buffers (reused, grown).
        self._staging: List[bytearray] = [
            bytearray(0) for _ in range(self.num_workers)
        ]
        self._closed = False
        specs = []
        for w in range(self.num_workers):
            specs.append(
                WorkerSpec(
                    worker_id=w,
                    num_workers=self.num_workers,
                    shard_ids=tuple(
                        sid for sid in range(num_shards)
                        if sid % self.num_workers == w
                    ),
                    policy=policy,
                    num_shards=num_shards,
                    k=k,
                    owners=owners,
                    costs=costs,
                    policy_seed=policy_seed,
                    trace=trace,
                    horizon=horizon,
                    validate=validate,
                    window=window,
                    num_users=self.num_users,
                    timing=timing,
                    flight_capacity=flight_capacity,
                    flight_meta=dict(flight_meta or {}),
                    monitor=monitor,
                    monitor_every=monitor_every,
                    trace_jsonl=trace_jsonl,
                    profile=dict(profile) if profile else None,
                )
            )
        try:
            for w, spec in enumerate(specs):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, spec),
                    name=f"{name}-worker-{w}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            # Handshake: surface build errors (unknown policy, missing
            # costs, unpicklable spec under spawn) at construction.
            for w in range(self.num_workers):
                reply = self._recv(w)
                if reply[0] != "ready":
                    raise RuntimeError(
                        f"shard worker {w} failed to start: {reply[1]}"
                    )
        except BaseException:
            self.close(graceful=False)
            raise

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _recv(self, w: int):
        """Receive one pickled reply from worker *w*, watching for death."""
        conn = self._conns[w]
        try:
            while not conn.poll(_POLL_INTERVAL):
                if not self._procs[w].is_alive():
                    raise WorkerCrashed(
                        f"shard worker {w} of pool {self.name!r} died "
                        f"(exitcode {self._procs[w].exitcode})"
                    )
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashed(
                f"shard worker {w} of pool {self.name!r} closed its pipe: {exc}"
            ) from exc
        if isinstance(reply, tuple) and reply and reply[0] == "err":
            raise WorkerCrashed(
                f"shard worker {w} of pool {self.name!r} errored: {reply[1]}"
            )
        return reply

    def _recv_bytes(self, w: int) -> bytes:
        """Receive one data-plane reply frame, watching for death."""
        conn = self._conns[w]
        try:
            while not conn.poll(_POLL_INTERVAL):
                if not self._procs[w].is_alive():
                    raise WorkerCrashed(
                        f"shard worker {w} of pool {self.name!r} died "
                        f"(exitcode {self._procs[w].exitcode})"
                    )
            frame = conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise WorkerCrashed(
                f"shard worker {w} of pool {self.name!r} closed its pipe: {exc}"
            ) from exc
        if frame[:1] == b"E":
            raise WorkerCrashed(
                f"shard worker {w} of pool {self.name!r} errored: "
                f"{frame[1:].decode(errors='replace')}"
            )
        return frame

    def _send_bytes(self, w: int, buf, size: Optional[int] = None) -> None:
        try:
            if size is None:
                self._conns[w].send_bytes(buf)
            else:
                self._conns[w].send_bytes(buf, 0, size)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(
                f"shard worker {w} of pool {self.name!r} is gone: {exc}"
            ) from exc

    def _send_control(self, w: int, msg: tuple) -> None:
        self._send_bytes(w, b"!" + pickle.dumps(msg))

    # ------------------------------------------------------------------
    # Ring management (parent side)
    # ------------------------------------------------------------------
    def _ensure_ring(self, w: int, data_need: int, reply_need: int) -> None:
        """Make worker *w*'s ring hold records of the given sizes,
        creating or growing the block (and announcing it over the
        control plane) when required."""
        ring = self._rings[w]
        if (
            ring is not None
            and ring["data_cap"] >= data_need
            and ring["reply_cap"] >= reply_need
        ):
            return
        from multiprocessing import shared_memory

        data_cap = _DEFAULT_DATA_CAP
        while data_cap < data_need:
            data_cap <<= 1
        reply_cap = _DEFAULT_REPLY_CAP
        while reply_cap < reply_need:
            reply_cap <<= 1
        if ring is not None:  # growing: keep the larger of each region
            data_cap = max(data_cap, int(ring["data_cap"]))
            reply_cap = max(reply_cap, int(ring["reply_cap"]))
        block = shared_memory.SharedMemory(
            create=True, size=_RING_HEADER + data_cap + reply_cap
        )
        struct.pack_into(
            "<qqqqqqq", block.buf, 0,
            _RING_MAGIC, data_cap, reply_cap, 0, 0, 0, 0,
        )
        self._send_control(w, ("ring", block.name))
        try:
            self._recv(w)  # ("ok",)
        except BaseException:
            block.close()
            block.unlink()
            raise
        if ring is not None:
            ring["block"].close()
            try:
                ring["block"].unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._rings[w] = {
            "block": block,
            "data_cap": data_cap,
            "reply_cap": reply_cap,
            "data_off": 0,
        }

    def _ring_send(
        self,
        w: int,
        t0: int,
        wpages: np.ndarray,
        pos: np.ndarray,
        trace_id: int = 0,
        parent: int = 0,
    ) -> None:
        """Frame one batch into worker *w*'s data ring and ring the
        doorbell carrying the record offset (the only pipe traffic for
        a ring exchange)."""
        m = int(wpages.size)
        nbytes = _data_record_bytes(m)
        self._ensure_ring(w, nbytes, _reply_record_bytes(m))
        ring = self._rings[w]
        buf = ring["block"].buf
        off = int(ring["data_off"])
        if off + nbytes > int(ring["data_cap"]):  # restart at the base
            off = 0
        base = _RING_HEADER + off
        struct.pack_into("<qqqqq", buf, base, nbytes, t0, m, trace_id, parent)
        np.frombuffer(buf, dtype=np.int64, count=m, offset=base + _DATA_REC_HEADER)[
            :
        ] = wpages
        np.frombuffer(
            buf, dtype=np.int32, count=m, offset=base + _DATA_REC_HEADER + 8 * m
        )[:] = pos
        ring["data_off"] = off + nbytes
        struct.pack_into("<q", buf, 24, ring["data_off"])
        self._send_bytes(w, b"g" + struct.pack("<q", off))

    def _ring_read_reply(self, w: int, m: int, off: int) -> np.ndarray:
        """Decode the reply record at region offset *off* (from the
        worker's reply frame)."""
        ring = self._rings[w]
        buf = ring["block"].buf
        base = _RING_HEADER + int(ring["data_cap"]) + off
        n = struct.unpack_from("<q", buf, base + 8)[0]
        if n != m:  # pragma: no cover - protocol bug guard
            raise WorkerCrashed(
                f"shard worker {w} reply length {n} != expected {m}"
            )
        return np.frombuffer(
            buf, dtype=np.uint8, count=m, offset=base + _REPLY_REC_HEADER
        )

    def _pipe_send(
        self,
        w: int,
        t0: int,
        wpages: np.ndarray,
        pos: np.ndarray,
        trace_id: int = 0,
        parent: int = 0,
    ) -> None:
        """Frame one batch into the reusable staging buffer and send it
        as a single payload — no pickling, no per-batch allocation once
        the buffer has grown to the working batch size."""
        m = int(wpages.size)
        need = _PIPE_HDR + 12 * m
        buf = self._staging[w]
        if len(buf) < need:
            buf = self._staging[w] = bytearray(max(need, 4096))
        buf[0:1] = b"p"
        struct.pack_into("<qqqq", buf, 8, t0, m, trace_id, parent)
        np.frombuffer(buf, dtype=np.int64, count=m, offset=_PIPE_HDR)[:] = wpages
        np.frombuffer(buf, dtype=np.int32, count=m, offset=_PIPE_HDR + 8 * m)[
            :
        ] = pos
        self._send_bytes(w, buf, need)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def route(self, pages: np.ndarray) -> np.ndarray:
        """Per-page worker ids (the precomputed splitmix64 table)."""
        return self._page_worker[pages]

    def apply(
        self,
        pages: np.ndarray,
        t0: int,
        trace_id: int = 0,
        parent: int = 0,
    ) -> np.ndarray:
        """Serve one submission batch across the workers.

        *pages* is the batch in submission order; request *i* carries
        global time ``t0 + i``.  Returns the merged ``uint8`` hit-flag
        array, index-aligned with *pages*.  A non-zero *trace_id*
        propagates the distributed span context (*parent* is the
        router-side span id) to every worker touched by the batch.
        """
        pages = np.ascontiguousarray(pages, dtype=np.int64)
        n = int(pages.size)
        wids = self._page_worker[pages]
        sends: List[Tuple[int, np.ndarray, bool]] = []
        threshold = self._shm_threshold
        via_ring_always = self.transport == "ring"
        for w in range(self.num_workers):
            pos = np.nonzero(wids == w)[0]
            if not pos.size:
                continue
            m = int(pos.size)
            wpages = pages[pos]
            via_ring = via_ring_always or (
                threshold is not None and m >= threshold
            )
            if via_ring:
                self._ring_send(w, t0, wpages, pos, trace_id, parent)
            else:
                self._pipe_send(w, t0, wpages, pos, trace_id, parent)
            sends.append((w, pos, via_ring))
        flags = np.empty(n, dtype=np.uint8)
        for w, pos, via_ring in sends:
            frame = self._recv_bytes(w)
            if via_ring:
                # b"r" + offset: the flags live in the reply ring.
                roff = struct.unpack_from("<q", frame, 1)[0]
                flags[pos] = self._ring_read_reply(w, int(pos.size), roff)
            else:
                flags[pos] = np.frombuffer(frame, dtype=np.uint8, offset=1)
        return flags

    def apply_detail(
        self, pages: np.ndarray, t0: int
    ) -> List[Tuple[bool, Optional[int], int]]:
        """Serve one batch keeping per-request ``(hit, victim, shard)``.

        Detail exchanges ride the control plane (pickled): they return
        heterogeneous tuples, and the single-request path that uses
        them is not the throughput path."""
        pages = np.ascontiguousarray(pages, dtype=np.int64)
        wids = self._page_worker[pages]
        sends: List[Tuple[int, np.ndarray]] = []
        for w in range(self.num_workers):
            pos = np.nonzero(wids == w)[0]
            if not pos.size:
                continue
            self._send_control(
                w,
                ("d", t0, pos.astype(np.int32).tobytes(), pages[pos].tobytes()),
            )
            sends.append((w, pos))
        out: List[Optional[Tuple[bool, Optional[int], int]]] = [None] * int(
            pages.size
        )
        for w, pos in sends:
            for i, tup in zip(pos.tolist(), self._recv(w)):
                out[i] = tuple(tup)
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Scrape-time gather
    # ------------------------------------------------------------------
    def worker_snapshots(
        self, best_effort: bool = False
    ) -> List[Dict[str, object]]:
        """One ground-truth snapshot per worker (see
        ``_WorkerState.snapshot``); with *best_effort* dead workers are
        skipped instead of raising."""
        snaps: List[Dict[str, object]] = []
        polled: List[int] = []
        for w in range(self.num_workers):
            try:
                self._send_control(w, ("s",))
                polled.append(w)
            except WorkerCrashed:
                if not best_effort:
                    raise
        for w in polled:
            try:
                snaps.append(self._recv(w))
            except WorkerCrashed:
                if not best_effort:
                    raise
        return snaps

    def snapshot(self, best_effort: bool = False) -> Dict[str, object]:
        """Merge the worker snapshots into one pool-level document."""
        snaps = self.worker_snapshots(best_effort=best_effort)
        hits = [0] * self.num_users
        misses = [0] * self.num_users
        window_bins: Dict[int, List[int]] = {}
        shards: List[Dict[str, object]] = []
        merged: Dict[str, object] = {
            "workers": self.num_workers,
            "served": 0,
            "monitor_flags": 0,
            "monitor_samples": 0,
            "flight_len": 0,
        }
        for snap in snaps:
            merged["served"] += snap["served"]
            merged["monitor_flags"] += snap["monitor_flags"]
            merged["monitor_samples"] += snap["monitor_samples"]
            merged["flight_len"] += snap["flight_len"]
            for i, h in enumerate(snap["hits"]):
                hits[i] += h
            for i, m in enumerate(snap["misses"]):
                misses[i] += m
            for idx, row in snap["window_bins"].items():
                tgt = window_bins.setdefault(int(idx), [0] * self.num_users)
                for i, v in enumerate(row):
                    tgt[i] += v
            shards.extend(snap["shards"])
        shards.sort(key=lambda row: row["shard"])
        merged.update(
            {
                "hits": hits,
                "misses": misses,
                "window_bins": window_bins,
                "shards": shards,
            }
        )
        return merged

    def flight_windows(
        self, best_effort: bool = False
    ) -> List[Tuple[Dict[str, object], List[tuple]]]:
        """Per-worker ``(meta, raw events)`` flight windows."""
        out: List[Tuple[Dict[str, object], List[tuple]]] = []
        polled: List[int] = []
        for w in range(self.num_workers):
            try:
                self._send_control(w, ("f",))
                polled.append(w)
            except WorkerCrashed:
                if not best_effort:
                    raise
        for w in polled:
            try:
                out.append(tuple(self._recv(w)))
            except WorkerCrashed:
                if not best_effort:
                    raise
        return out

    def profile_gather(
        self, best_effort: bool = False
    ) -> Dict[str, Dict[str, int]]:
        """Folded-stack counts per profiled worker, keyed ``w<i>``.

        Empty when the pool was built without ``profile=``; merge with
        the parent's own profile via :func:`repro.obs.prof.merge_folded`.
        """
        out: Dict[str, Dict[str, int]] = {}
        polled: List[int] = []
        for w in range(self.num_workers):
            try:
                self._send_control(w, ("prof",))
                polled.append(w)
            except WorkerCrashed:
                if not best_effort:
                    raise
        for w in polled:
            try:
                folded = self._recv(w)
            except WorkerCrashed:
                if not best_effort:
                    raise
                continue
            if folded is not None:
                out[f"w{w}"] = folded
        return out

    def merged_flight_events(self, best_effort: bool = False) -> List[tuple]:
        """All workers' windows k-way-merged by global time.

        Every request appends exactly one event on exactly one worker,
        so as long as no per-worker ring wrapped, the merge is the
        *dense* global window — directly
        :func:`~repro.obs.flight.replay_verify`-able.
        """
        windows = self.flight_windows(best_effort=best_effort)
        return list(
            heapq.merge(*(events for _meta, events in windows),
                        key=lambda ev: ev[0])
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """All workers running and the pool not closed."""
        return (
            not self._closed
            and bool(self._procs)
            and all(p.is_alive() for p in self._procs)
        )

    def close(self, graceful: bool = True) -> None:
        """Shut the workers down (idempotent).

        Graceful close sends each live worker the close op and joins
        it; anything unresponsive is terminated.  Ring blocks are
        unlinked last.
        """
        if self._closed:
            return
        self._closed = True
        if graceful:
            for w, conn in enumerate(self._conns):
                try:
                    conn.send_bytes(b"!" + pickle.dumps(("c",)))
                except (BrokenPipeError, OSError):
                    pass
            for w in range(len(self._conns)):
                try:
                    if self._conns[w].poll(1.0):
                        self._conns[w].recv()
                except (EOFError, OSError):
                    pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for ring in self._rings:
            if ring is not None:
                ring["block"].close()
                try:
                    ring["block"].unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        self._rings = [None] * len(self._rings)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close(graceful=False)
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardWorkerPool(name={self.name!r}, W={self.num_workers}, "
            f"S={self.num_shards}, transport={self.transport!r}, "
            f"alive={self.alive})"
        )


__all__ = ["ShardWorkerPool", "TRANSPORTS", "WorkerCrashed", "WorkerSpec"]
