"""Command-line entry point: ``python -m repro.serve``.

Two subcommands::

    # Serve a TCP cache (line-delimited JSON protocol) until killed:
    python -m repro.serve serve --policy alg-discrete --k 256 \\
        --tenants 4 --pages-per-tenant 500 --beta 2 --port 9731

    # Replay a CSV (.gz ok) or columnar trace against a running server:
    python -m repro.serve replay --host 127.0.0.1 --port 9731 trace.csv.gz

The ``serve`` universe is ``tenants * pages-per-tenant`` pages owned in
contiguous blocks, each tenant billed :math:`f_i(m) = m^\\beta`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

import numpy as np

from repro.core.cost_functions import MonomialCost
from repro.obs import (
    CompetitiveAuditor,
    FlightRecorder,
    InvariantMonitor,
    JsonlSink,
    Observability,
)
from repro.serve.client import load_trace_file, replay_tcp
from repro.serve.server import CacheServer


async def _serve(args: argparse.Namespace) -> int:
    owners = np.repeat(
        np.arange(args.tenants, dtype=np.int64), args.pages_per_tenant
    )
    costs = [MonomialCost(args.beta) for _ in range(args.tenants)]
    obs = Observability()
    if args.trace_jsonl:
        obs = Observability.enabled(
            sink=JsonlSink(args.trace_jsonl),
            monitor=InvariantMonitor(costs) if args.monitor else None,
        )
    elif args.monitor:
        obs.monitor = InvariantMonitor(costs)
    if args.flight:
        obs.flight = FlightRecorder(
            capacity=args.flight, dump_path=args.flight_dump
        )
    if args.audit:
        obs.auditor = CompetitiveAuditor(
            costs, args.k, window=args.audit_window
        )
    alerts = None
    if args.http is not None or args.alerts_jsonl:
        from repro.obs.alerts import AlertEngine, serve_rule_pack
        from repro.obs.timeline import Timeline

        if obs.timeline is None:
            obs.timeline = Timeline(interval=args.timeline_interval)
        sinks = []
        if args.alerts_jsonl:
            sinks.append(
                JsonlSink(args.alerts_jsonl, max_bytes=args.alerts_max_bytes)
            )
        alerts = AlertEngine(
            obs.timeline,
            serve_rule_pack(queue_limit=args.queue_limit),
            sinks,
        )
    server = CacheServer(
        args.policy,
        args.k,
        owners,
        costs,
        num_shards=args.shards,
        queue_limit=args.queue_limit,
        tenant_inflight=args.tenant_inflight,
        window=args.window,
        policy_seed=args.seed,
        horizon=args.horizon,
        obs=obs,
        monitor_every=args.monitor_every,
        workers=args.workers,
        transport=args.transport,
        shm_threshold=args.shm_threshold,
        profile=args.profile,
        trace_sample=args.trace_sample,
        http_port=args.http,
        http_host=args.host,
        alerts=alerts,
    )
    await server.start()
    host, port = await server.start_tcp(args.host, args.port)
    print(
        f"serving policy={args.policy} k={args.k} shards={args.shards} "
        f"workers={server.workers} on {host}:{port} (ctrl-c to stop)",
        flush=True,
    )
    if server.http_address is not None:
        http_host, http_port = server.http_address
        print(
            f"http admin plane on http://{http_host}:{http_port} "
            f"(/metrics /health /ready /alerts /timeline /stats)",
            flush=True,
        )
    try:
        await asyncio.Event().wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await server.stop()
        print(json.dumps(server.stats(), indent=2))
        if args.profile:
            profiles = server.profile_folded()
            counts = " ".join(
                f"{name}={sum(folded.values())}"
                for name, folded in sorted(profiles.items())
            )
            print(f"profile samples: {counts}", flush=True)
            if args.profile_out:
                from repro.obs.prof import merge_folded, render_folded

                with open(args.profile_out, "w", encoding="utf-8") as fh:
                    for line in render_folded(merge_folded(profiles)):
                        fh.write(line + "\n")
                print(f"merged folded stacks -> {args.profile_out}")
        if obs.auditor is not None:
            print(json.dumps({"audit": server.audit()}, indent=2))
        if obs.monitor is not None:
            print(f"invariant monitor: {obs.monitor.summary()}", flush=True)
        if obs.flight is not None and args.flight_dump:
            path = obs.flight.dump_jsonl(reason="shutdown")
            print(f"flight recorder: {len(obs.flight)} events -> {path}",
                  flush=True)
        if server.alerts is not None:
            print(
                json.dumps({"alerts": server.alerts.snapshot()}), flush=True
            )
            server.alerts.close()
        obs.tracer.close()
    return 0


async def _replay(args: argparse.Namespace) -> int:
    trace = load_trace_file(args.trace)
    stats = await replay_tcp(args.host, args.port, trace, batch=args.batch)
    print(json.dumps(stats, indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="run a TCP cache server")
    serve_p.add_argument("--policy", default="alg-discrete")
    serve_p.add_argument("--k", type=int, default=256)
    serve_p.add_argument("--shards", type=int, default=1)
    serve_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes serving the shard set (clamped to "
        "--shards; 1 = in-process)",
    )
    serve_p.add_argument(
        "--transport", choices=("ring", "pipe"), default="ring",
        help="worker-exchange transport: persistent shared-memory ring "
        "(default) or framed pipe payloads",
    )
    serve_p.add_argument(
        "--shm-threshold", type=int, default=4096, metavar="N",
        help="pipe transport only: per-worker batch size at which an "
        "exchange escalates to the shared-memory ring",
    )
    serve_p.add_argument("--tenants", type=int, default=4)
    serve_p.add_argument("--pages-per-tenant", type=int, default=500)
    serve_p.add_argument("--beta", type=int, default=2, help="cost exponent")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0)
    serve_p.add_argument("--queue-limit", type=int, default=1024)
    serve_p.add_argument("--tenant-inflight", type=int, default=None)
    serve_p.add_argument("--window", type=int, default=None)
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument(
        "--horizon", type=int, default=10_000_000,
        help="max requests served (sizes ALG-CONT's ledger)",
    )
    serve_p.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="write pipeline span traces to this JSONL file "
        "(aggregate with `python -m repro.obs summary PATH`)",
    )
    serve_p.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="head-sample distributed traces: trace every Nth "
        "submission (default 1 = all; higher N cuts tracing cost)",
    )
    serve_p.add_argument(
        "--profile", nargs="?", const=True, default=None, type=float,
        metavar="INTERVAL",
        help="sampling profiler in the parent and every worker process "
        "(optional interval, seconds; default 0.005)",
    )
    serve_p.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="write the merged folded stacks here on shutdown "
        "(inspect with `python -m repro.obs prof PATH`)",
    )
    serve_p.add_argument(
        "--monitor", action="store_true",
        help="attach a live InvariantMonitor (budget/KKT drift flags)",
    )
    serve_p.add_argument(
        "--monitor-every", type=int, default=1024,
        help="requests between invariant monitor samples",
    )
    serve_p.add_argument(
        "--flight", type=int, default=0, metavar="N",
        help="attach a flight recorder with an N-event ring (0 = off)",
    )
    serve_p.add_argument(
        "--flight-dump", default=None, metavar="PATH",
        help="JSONL dump path for the flight recorder (written on "
        "invariant drift, fault drain, and shutdown)",
    )
    serve_p.add_argument(
        "--audit", action="store_true",
        help="attach a streaming Theorem-1.1 competitive-ratio auditor "
        "(adds the TCP `audit` op and audit_* gauges)",
    )
    serve_p.add_argument(
        "--audit-window", type=int, default=None,
        help="auditor lookahead window (default 2*k)",
    )
    serve_p.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="expose the HTTP admin plane on this port (0 = ephemeral): "
        "/metrics /health /ready /alerts /timeline /stats; attaches a "
        "default alert engine over the serve rule pack",
    )
    serve_p.add_argument(
        "--alerts-jsonl", default=None, metavar="PATH",
        help="write alert transitions (fired/resolved) to this JSONL "
        "file; implies the alert engine even without --http",
    )
    serve_p.add_argument(
        "--alerts-max-bytes", type=int, default=None, metavar="N",
        help="rotate the alerts JSONL at N bytes (to PATH.1, same "
        "scheme as --trace-jsonl rotation)",
    )
    serve_p.add_argument(
        "--timeline-interval", type=float, default=1.0, metavar="SECONDS",
        help="timeline snapshot period — also the alert evaluation "
        "cadence (default 1.0)",
    )

    replay_p = sub.add_parser(
        "replay", help="replay a CSV or columnar trace over TCP"
    )
    replay_p.add_argument(
        "trace",
        help="page,tenant CSV path (.gz accepted) or a columnar trace "
        "directory (streamed, never materialized)",
    )
    replay_p.add_argument("--host", default="127.0.0.1")
    replay_p.add_argument("--port", type=int, required=True)
    replay_p.add_argument("--batch", type=int, default=256)

    args = parser.parse_args(argv)
    runner = _serve if args.command == "serve" else _replay
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 130


if __name__ == "__main__":
    sys.exit(main())
