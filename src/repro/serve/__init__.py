"""Async multi-tenant cache serving with live cost accounting.

The online counterpart of :mod:`repro.sim`: instead of materializing a
:class:`~repro.sim.trace.Trace` and replaying it through
:func:`~repro.sim.engine.simulate`, a :class:`CacheServer` accepts
live, interleaved per-tenant request streams (in-process async API or
a line-delimited JSON TCP front end), routes them through a
hash-sharded set of policy instances (:mod:`repro.serve.shard`), and
keeps a running per-tenant cost ledger (:mod:`repro.serve.accounting`)
quoting :math:`f_i(m_i)` and the marginal price of the next miss.

Run a TCP server from the command line with ``python -m repro.serve``.
"""

from repro.serve.accounting import CostLedger
from repro.serve.client import (
    ReplayReport,
    load_trace_file,
    replay,
    replay_stream,
    replay_tcp,
    serve_trace,
)
from repro.serve.server import (
    BatchOutcome,
    CacheServer,
    RequestOutcome,
    ServerClosed,
    TenantGate,
)
from repro.serve.shard import CacheShard, ShardManager, page_hash

# Imported last: workers.py imports ServerClosed from server.py.
from repro.serve.workers import TRANSPORTS, ShardWorkerPool, WorkerCrashed

__all__ = [
    "TRANSPORTS",
    "BatchOutcome",
    "CacheServer",
    "CacheShard",
    "CostLedger",
    "ReplayReport",
    "RequestOutcome",
    "ServerClosed",
    "ShardManager",
    "ShardWorkerPool",
    "TenantGate",
    "WorkerCrashed",
    "load_trace_file",
    "page_hash",
    "replay",
    "replay_stream",
    "replay_tcp",
    "serve_trace",
]
