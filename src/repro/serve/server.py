"""The asyncio cache server.

:class:`CacheServer` turns any registered eviction policy into a live
multi-tenant serving process: requests arrive through an in-process
async API or a line-delimited-JSON TCP front end, flow through one
bounded ingress queue, and are applied to the shard set in strict
arrival order by a single consumer task (cache mutations stay
sequential, exactly like the engine, so results are reproducible and
policies need no locking).

Flow control is two-level:

* **global** — the ingress queue is bounded (``queue_limit`` batches);
  producers block in ``await`` when the consumer falls behind;
* **per tenant** — a :class:`TenantGate` caps each tenant's queued
  requests (``tenant_inflight``), so one flooding tenant saturates its
  own gate instead of the shared queue (cf. the per-tenant guarantees
  that motivate *Caching with Reserves*-style systems).

Shutdown semantics: :meth:`CacheServer.stop` closes the ingress (new
submissions raise :class:`ServerClosed`), lets the consumer drain
everything already accepted, then stops.  The same guarantee holds
under fault injection — if the consumer task is *cancelled* mid-stream
it synchronously drains the queue before honouring the cancellation —
so an accepted request is always answered.  Enforced by
``tests/test_serve_server.py``.

The ``/stats`` snapshot (:meth:`CacheServer.stats`) is a plain dict:
totals, per-tenant hits/misses/cost/marginal quote, queue depth, and
per-shard occupancy — the same document over TCP ``{"op": "stats"}``.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_functions import CostFunction
from repro.obs import Observability, RateWindow
from repro.obs.distrib import emit_span
from repro.obs.registry import CollectedFamily
from repro.obs.timeline import Timeline
from repro.serve.accounting import CostLedger
from repro.serve.shard import PolicySpec, ShardManager
from repro.sim.trace import Trace
from repro.util.validation import check_positive_int


class ServerClosed(RuntimeError):
    """Raised when submitting to a server that is stopping/stopped."""


#: Shared no-op context manager for unsampled ingress spans —
#: ``nullcontext`` holds no state, so one instance is reusable.
_NULL_CM = nullcontext()


@dataclass(frozen=True)
class RequestOutcome:
    """Answer to one served request."""

    page: int
    tenant: int
    hit: bool
    t: int
    shard: int
    victim: Optional[int] = None


@dataclass(frozen=True)
class BatchOutcome:
    """Answer to one pipelined batch; ``hit_flags[i]`` covers
    ``pages[i]`` in submission order."""

    t0: int
    hits: int
    misses: int
    hit_flags: List[bool]


class TenantGate:
    """A counting gate: at most *capacity* queued requests per tenant.

    ``asyncio.Semaphore`` with n-credit acquire; batch submissions
    charge ``min(n, capacity)`` credits so a batch larger than the gate
    cannot deadlock itself (it still throttles: the next batch waits
    until those credits return).
    """

    __slots__ = ("capacity", "_available", "_waiters")

    def __init__(self, capacity: int) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        self._available = capacity
        self._waiters: Deque[Tuple[int, asyncio.Future]] = deque()

    async def acquire(self, n: int = 1) -> int:
        """Take ``min(n, capacity)`` credits, waiting if necessary;
        returns the number actually taken (to hand to :meth:`release`)."""
        n = min(n, self.capacity)
        if self._available >= n and not self._waiters:
            self._available -= n
            return n
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append((n, fut))
        try:
            await fut
        except asyncio.CancelledError:
            if fut.done() and not fut.cancelled():
                # Credits were granted after the cancellation raced in;
                # hand them back.
                self.release(n)
            else:
                try:
                    self._waiters.remove((n, fut))
                except ValueError:
                    pass  # release() already discarded the cancelled entry
            raise
        return n

    def release(self, n: int) -> None:
        """Return *n* credits and wake whoever now fits (FIFO)."""
        self._available += n
        while self._waiters:
            need, fut = self._waiters[0]
            if fut.cancelled():
                self._waiters.popleft()
                continue
            if self._available < need:
                break
            self._waiters.popleft()
            self._available -= need
            fut.set_result(None)

    @property
    def queued(self) -> int:
        """Requests currently holding credits."""
        return self.capacity - self._available


#: Queue items: (pages, future, detail, per-tenant credits to release,
#: enqueue timestamp for queue-wait accounting — 0.0 when obs is off).
_Item = Tuple[
    Sequence[int],
    "asyncio.Future",
    bool,
    Optional[List[Tuple[int, int]]],
    float,
]


class CacheServer:
    """Serve live per-tenant request streams against a sharded cache.

    Parameters
    ----------
    policy:
        Registry name, factory, or (``num_shards=1`` only) instance.
    k:
        Total cache capacity across shards.
    owners:
        Page-ownership array defining the page universe.
    costs:
        Per-tenant cost functions (required for cost-aware policies,
        and for cost/quote fields in ``/stats``).
    num_shards:
        Independent policy shards (see :class:`ShardManager`).
    queue_limit:
        Ingress queue bound, in *submissions* (single requests or
        batches).
    tenant_inflight:
        Per-tenant queued-request cap; ``None`` disables the gates.
    window:
        Optional request-count window for SLA accounting.
    policy_seed, trace, horizon, validate:
        Passed through to :class:`ShardManager`.
    workers:
        OS processes serving the shard set (clamped to ``num_shards``).
        The default ``1`` keeps the in-process path bit-for-bit; with
        ``W > 1`` a :class:`~repro.serve.workers.ShardWorkerPool` is
        started alongside the consumer — shard *s* lives in worker
        ``s % W``, the consumer routes each submission with the same
        splitmix64 hash and merges replies back into submission order,
        so outcomes, backpressure, and drain semantics are unchanged
        and results are bit-identical for any ``W`` (the global clock
        is assigned before routing).  Scrape paths merge the workers'
        ledgers/registries, keeping ``stats``/``metrics`` exact.
    transport:
        Worker-exchange transport (parallel mode only).  ``"ring"``
        (default) moves every batch through a persistent per-worker
        shared-memory ring — the pipe carries only 1-byte doorbells;
        ``"pipe"`` frames batches into a reusable staging buffer sent
        over the pipe, escalating to the ring at ``shm_threshold``.
        Results are bit-identical either way.
    shm_threshold:
        Pipe-transport only: per-worker batch size at or above which an
        exchange uses the shared-memory ring anyway; ``None`` keeps
        everything on the pipe.  Ignored under ``transport="ring"``.
    obs:
        Telemetry bundle (:class:`~repro.obs.Observability`).  Defaults
        to a fresh, env-gated bundle per server so collector metric
        names never collide across servers.  When its registry is
        disabled (``REPRO_OBS=off``) the hot path takes a single extra
        boolean check; the ``metrics`` op still renders ground-truth
        counters via scrape-time collectors.
    monitor_every:
        When ``obs.monitor`` is set, sample the invariant monitor every
        this many served requests (0 disables sampling).
    profile:
        Sampling profiler (:mod:`repro.obs.prof`): ``True`` installs
        one at the default interval in this process *and* in every
        worker; a float sets the interval in seconds; ``None``/
        ``False`` (default) disables it.  Folded stacks are available
        from :meth:`profile_folded` after :meth:`stop` (worker
        profiles are gathered before the pool shuts down).
    trace_sample:
        Head-sampling rate for distributed traces: trace every *N*-th
        submission (default 1 = every submission).  Unsampled
        submissions carry ``trace_id=0`` on the worker wire — workers
        skip their span spills automatically — and emit no parent-side
        spans, so tracing cost scales with ``1/N`` while every sampled
        tree stays complete (ingress → route → worker applies).  The
        wire format is identical either way.
    """

    def __init__(
        self,
        policy: PolicySpec,
        k: int,
        owners: np.ndarray,
        costs: Optional[Sequence[CostFunction]] = None,
        *,
        num_shards: int = 1,
        queue_limit: int = 1024,
        tenant_inflight: Optional[int] = None,
        window: Optional[int] = None,
        policy_seed: Optional[int] = None,
        trace: Optional[Trace] = None,
        horizon: int = 0,
        validate: bool = True,
        name: str = "serve",
        obs: Optional[Observability] = None,
        monitor_every: int = 1024,
        workers: int = 1,
        transport: str = "ring",
        shm_threshold: Optional[int] = 4096,
        profile: object = None,
        trace_sample: int = 1,
        http_port: Optional[int] = None,
        http_host: str = "127.0.0.1",
        alerts: object = None,
    ) -> None:
        self.name = name
        self.shards = ShardManager(
            policy,
            num_shards,
            k,
            owners,
            costs,
            policy_seed=policy_seed,
            trace=trace,
            horizon=horizon,
            validate=validate,
        )
        #: Effective worker-process count (1 = in-process serving).
        self.workers = min(
            check_positive_int(workers, "workers"), self.shards.num_shards
        )
        if transport not in ("ring", "pipe"):
            raise ValueError(
                f"transport must be 'ring' or 'pipe', got {transport!r}"
            )
        self._transport = transport
        self._shm_threshold = shm_threshold
        # The pool rebuilds the shard set from the same spec, so keep it.
        self._policy_spec = policy
        self._policy_seed = policy_seed
        self._trace = trace
        self._horizon = horizon
        self._validate = validate
        self._window = window
        self._costs = costs
        self._pool = None
        self._pool_final: Optional[Dict[str, object]] = None
        self.ledger = CostLedger(self.shards.num_users, costs, window=window)
        self.owners = self.shards.owners
        self._owners_list: List[int] = self.owners.tolist()
        self._queue_limit = check_positive_int(queue_limit, "queue_limit")
        self._tenant_inflight = (
            None
            if tenant_inflight is None
            else check_positive_int(tenant_inflight, "tenant_inflight")
        )
        self._gates: Optional[List[TenantGate]] = None
        self._queue: Optional[asyncio.Queue] = None
        self._consumer: Optional[asyncio.Task] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._t = 0
        self._closed = True
        from repro.obs.prof import profile_spec

        self._profile = profile_spec(profile)
        self.profiler = None
        self._pool_profiles: Dict[str, Dict[str, int]] = {}
        self._timeline_task: Optional[asyncio.Task] = None
        # Distributed-trace bookkeeping: submission t0 -> (trace_id,
        # router span id), so the TCP reply span can link into the tree
        # the workers extended.  Bounded: traces are best-effort.
        self._route_ctx: Dict[int, Tuple[int, int]] = {}
        self._reply_ctx: Optional[Tuple[int, int]] = None
        self._trace_sample = check_positive_int(trace_sample, "trace_sample")
        self._trace_seq = 0
        self._ingress_seq = 0

        # --- Telemetry --------------------------------------------------
        self.obs = obs if obs is not None else Observability()
        reg = self.obs.registry
        self._metrics_on = reg.enabled
        self._tracing_on = self.obs.tracer.enabled
        self._obs_active = (
            self._metrics_on
            or self._tracing_on
            or (self.obs.monitor is not None and monitor_every > 0)
        )
        # Latency histograms cover the pipeline stages: queue wait
        # (enqueue -> consumer pickup) and apply (shard dispatch +
        # policy decisions for one submission).  NULL_METRIC when off.
        self._h_queue = reg.histogram(
            "serve_queue_wait_seconds",
            "Time a submission spends in the ingress queue",
        )
        self._h_apply = reg.histogram(
            "serve_apply_seconds",
            "Time applying one submission (request or batch) to the shards",
        )
        # Ground-truth counters come from scrape-time collectors (the
        # ledger/shards are the source of truth), so the hot path never
        # double-books and the `metrics` op stays exact under
        # REPRO_OBS=off.
        reg.register_collector(self._collect_metrics)
        self._rates = RateWindow()
        if monitor_every < 0:
            raise ValueError(f"monitor_every must be >= 0, got {monitor_every}")
        self._monitor_every = monitor_every
        self._since_monitor = 0
        self._monitor_flags_seen = 0
        # Decision-level observability: the flight recorder attaches to
        # every shard (one tuple append per request); the auditor gets
        # one observe per request in _process.  Both default to None —
        # the common hot path keeps a single identity check.
        self._auditor = self.obs.auditor
        if self._auditor is not None:
            reg.register_collector(self._collect_audit)
        self._flight = self.obs.flight
        if self._flight is not None:
            for shard in self.shards.shards:
                shard.attach_flight(self._flight, self._owners_list)
            self._flight.note_config(
                policy=self.shards.policy_name,
                k=self.shards.k,
                num_shards=self.shards.num_shards,
                policy_seed=policy_seed,
                source=f"serve:{name}",
            )
        if self._obs_active:
            for shard in self.shards.shards:
                shard.timing = [0.0, 0]

        # --- Alerting + HTTP admin plane --------------------------------
        # Alert rules evaluate on the timeline tick (zero per-request
        # work).  ``http_port=`` auto-builds a default engine over the
        # serve rule pack when none was given; an explicit ``alerts=``
        # engine must read the same timeline the server ticks.
        self._http_port = http_port
        self._http_host = http_host
        self._httpd = None
        self.http_address: Optional[Tuple[str, int]] = None
        self._crashes = 0
        if alerts is None and http_port is not None:
            from repro.obs.alerts import AlertEngine, serve_rule_pack

            if self.obs.timeline is None:
                self.obs.timeline = Timeline()
            alerts = AlertEngine(
                self.obs.timeline,
                serve_rule_pack(queue_limit=self._queue_limit),
            )
        if alerts is not None:
            engine_timeline = alerts.timeline  # type: ignore[attr-defined]
            if self.obs.timeline is None:
                self.obs.timeline = engine_timeline
            elif engine_timeline is not self.obs.timeline:
                raise ValueError(
                    "alerts.timeline must be obs.timeline — the engine "
                    "reads the ring this server's timeline tick feeds"
                )
        self.alerts = alerts

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CacheServer":
        """Create the ingress queue and start the consumer task."""
        if self._consumer is not None and not self._consumer.done():
            raise RuntimeError("server already started")
        if self.workers > 1 and self._pool is None:
            # Imported lazily: workers.py imports ServerClosed from here.
            from repro.serve.workers import ShardWorkerPool

            flight = self._flight
            self._pool = ShardWorkerPool(
                self._policy_spec,
                self.workers,
                self.shards.num_shards,
                self.shards.k,
                self.owners,
                self._costs,
                policy_seed=self._policy_seed,
                trace=self._trace,
                horizon=self._horizon,
                validate=self._validate,
                window=self._window,
                timing=self._obs_active,
                flight_capacity=flight.capacity if flight is not None else 0,
                flight_meta={
                    "policy": self.shards.policy_name,
                    "k": self.shards.k,
                    "num_shards": self.shards.num_shards,
                    "policy_seed": self._policy_seed,
                    "source": f"serve:{self.name}",
                },
                monitor=self.obs.monitor is not None
                and self._monitor_every > 0,
                monitor_every=self._monitor_every,
                transport=self._transport,
                shm_threshold=self._shm_threshold,
                name=self.name,
                # Workers spill spans next to the parent's JSONL trace
                # (sink path required: in-memory sinks cannot cross the
                # process boundary).
                trace_jsonl=(
                    getattr(self.obs.tracer.sink, "path", None)
                    if self._tracing_on
                    else None
                ),
                profile=self._profile,
            )
        if self._profile is not None and self.profiler is None:
            from repro.obs.prof import DEFAULT_INTERVAL, SamplingProfiler

            self.profiler = SamplingProfiler(
                float(self._profile.get("interval", DEFAULT_INTERVAL))
            ).start()
        if self.obs.timeline is not None and self._timeline_task is None:
            self._timeline_task = asyncio.create_task(
                self._timeline_loop(), name=f"{self.name}-timeline"
            )
        self._queue = asyncio.Queue(maxsize=self._queue_limit)
        if self._tenant_inflight is not None:
            self._gates = [
                TenantGate(self._tenant_inflight)
                for _ in range(self.shards.num_users)
            ]
        self._closed = False
        self._consumer = asyncio.create_task(self._run(), name=f"{self.name}-consumer")
        if self._http_port is not None and self._httpd is None:
            await self.start_http(self._http_host, self._http_port)
        return self

    async def stop(self) -> None:
        """Close the ingress, drain every accepted request, stop."""
        if self._queue is None:
            return
        self._closed = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        if self._consumer is not None and not self._consumer.done():
            await self._queue.put(None)  # drain sentinel
            await self._consumer
        self._consumer = None
        if self._timeline_task is not None:
            self._timeline_task.cancel()
            try:
                await self._timeline_task
            except asyncio.CancelledError:
                pass
            self._timeline_task = None
        if self._pool is not None:
            # Freeze the workers' ground truth so post-stop scrapes and
            # flight verification keep working, then shut them down.
            self._pool_snapshot(best_effort=True)
            self._sync_pool_flight(best_effort=True)
            if self._profile is not None:
                self._pool_profiles = self._pool.profile_gather(
                    best_effort=True
                )
            self._pool.close()
            self._pool = None
        if self.profiler is not None:
            self.profiler.stop()
        if self._auditor is not None:
            # End of stream: price the buffered tail so the final audit
            # covers every served request.
            self._auditor.finalize()
        # The admin plane goes away last: /ready served 503 from the
        # moment _closed flipped, through the whole drain, until here —
        # so load balancers see "draining" for the full shutdown.
        if self._httpd is not None:
            await self._httpd.stop()
            self._httpd = None

    async def drain(self) -> None:
        """Wait until everything currently queued has been served."""
        if self._queue is not None:
            await self._queue.join()

    @property
    def time(self) -> int:
        """Requests served so far (the global clock handed to policies)."""
        return self._t

    @property
    def queue_depth(self) -> int:
        """Submissions currently queued (requests + batches)."""
        return 0 if self._queue is None else self._queue.qsize()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def _check_pages(self, pages: Sequence[int]) -> None:
        num_pages = self.shards.num_pages
        for page in pages:
            if not 0 <= page < num_pages:
                raise ValueError(
                    f"page {page} outside the universe [0, {num_pages})"
                )

    def _ingress_span(self, n: int):
        """Ingress span for one submission, honouring ``trace_sample``.

        Sampling is decided per ingress (its own counter: submissions
        reach the consumer in the same order, but the spans are local
        to the parent, so the two counters need not be fused)."""
        if self._tracing_on and self._trace_sample > 1:
            self._ingress_seq += 1
            if self._ingress_seq % self._trace_sample:
                return _NULL_CM
        return self.obs.tracer.span("serve.ingress", n=n)

    async def _submit(self, pages: Sequence[int], detail: bool) -> asyncio.Future:
        if self._closed or self._queue is None:
            raise ServerClosed(f"server {self.name!r} is not accepting requests")
        self._check_pages(pages)
        with self._ingress_span(len(pages)):
            credits: Optional[List[Tuple[int, int]]] = None
            if self._gates is not None:
                per_tenant: Dict[int, int] = {}
                for page in pages:
                    tenant = self._owners_list[page]
                    per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
                credits = []
                for tenant, n in per_tenant.items():
                    taken = await self._gates[tenant].acquire(n)
                    credits.append((tenant, taken))
            fut = asyncio.get_running_loop().create_future()
            t_enq = perf_counter() if self._obs_active else 0.0
            await self._queue.put((pages, fut, detail, credits, t_enq))
        return fut

    async def request(self, page: int) -> RequestOutcome:
        """Serve one page request; resolves once it has been applied."""
        fut = await self._submit((page,), detail=True)
        return (await fut)[0]

    async def submit_many(self, pages: Sequence[int]) -> asyncio.Future:
        """Enqueue a batch, returning the future of its
        :class:`BatchOutcome` — the pipelining primitive: submission
        order is serving order, so callers may keep several batches in
        flight and await the futures later."""
        return await self._submit(pages, detail=False)

    async def request_many(self, pages: Sequence[int]) -> BatchOutcome:
        """Serve a batch and wait for its outcome."""
        fut = await self.submit_many(pages)
        return await fut

    # ------------------------------------------------------------------
    # Consumer
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        queue = self._queue
        assert queue is not None
        try:
            while True:
                item = await queue.get()
                try:
                    if item is None:
                        return
                    self._process(item)
                except ServerClosed as exc:
                    # A shard worker died (WorkerCrashed is the only
                    # ServerClosed _process can raise): answer every
                    # accepted request with the error instead of
                    # hanging its future, dump what the survivors
                    # recorded, and stop consuming.
                    self._on_worker_crash(item, exc)
                    return
                finally:
                    queue.task_done()
        except asyncio.CancelledError:
            # Fault injection / hard shutdown: an accepted request is
            # still answered.  Processing is synchronous, so the cancel
            # can only land on the queue.get above — drain what was
            # accepted, then honour the cancellation.
            self._closed = True
            self._drain_sync()
            self._auto_dump("fault-drain")
            raise

    def _auto_dump(self, reason: str) -> None:
        """Persist the flight window when something went wrong (a new
        invariant flag, a fault-injected drain, a dead worker) — best
        effort, never masking the triggering condition."""
        flight = self._flight
        if flight is None or not flight.dump_path:
            return
        if self._pool is not None:
            self._sync_pool_flight(best_effort=True)
        if not len(flight):
            return
        try:
            flight.dump_jsonl(reason=reason)
        except OSError:  # pragma: no cover - disk trouble must not cascade
            pass

    def _sync_pool_flight(self, best_effort: bool = False) -> None:
        """Load the workers' flight windows, k-way-merged by global
        time, into the parent recorder — after which dumps and
        :func:`~repro.obs.flight.verify_flight` behave exactly as in
        in-process mode.  The merged window is dense (every request is
        recorded by exactly one worker) unless a worker could not be
        gathered."""
        flight = self._flight
        pool = self._pool
        if flight is None or pool is None:
            return
        try:
            windows = pool.flight_windows(best_effort=best_effort)
        except ServerClosed:
            if not best_effort:
                raise
            return
        import heapq

        merged = list(
            heapq.merge(*(events for _meta, events in windows),
                        key=lambda ev: ev[0])
        )
        flight.ring.clear()
        flight.ring.extend(merged)
        flight.note_config(
            workers=self.workers,
            dense=len(windows) == pool.num_workers,
        )

    def _fail_item(self, item: Optional[_Item], exc: BaseException) -> None:
        if item is None:
            return
        pages, fut, _detail, credits, _t_enq = item
        if credits is not None and self._gates is not None:
            for tenant, n in credits:
                self._gates[tenant].release(n)
        if not fut.done():
            fut.set_exception(exc)

    def _on_worker_crash(self, item: Optional[_Item], exc: Exception) -> None:
        """A worker died mid-exchange: close the ingress, fail the
        in-flight submission and everything still queued (an accepted
        request is always *answered*, here with the crash error), and
        auto-dump the surviving workers' flight windows."""
        self._closed = True
        # The timeline tick and HTTP plane keep running after a crash,
        # so the crash-counter bump below reaches the next snapshot and
        # the serve-worker-crashed alert fires within one tick.
        self._crashes += 1
        self._fail_item(item, exc)
        queue = self._queue
        assert queue is not None
        while True:
            try:
                nxt = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            try:
                self._fail_item(nxt, exc)
            finally:
                queue.task_done()
        self._auto_dump("worker-crash")

    def _drain_sync(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            try:
                if item is not None:
                    self._process(item)
            except ServerClosed as exc:
                self._on_worker_crash(item, exc)
                return
            finally:
                queue.task_done()

    def _process(self, item: _Item) -> None:
        if self._pool is not None:
            self._process_pool(item)
            return
        pages, fut, detail, credits, t_enq = item
        obs_on = self._obs_active
        if obs_on:
            t_start = perf_counter()
        serve = self.shards.serve
        record = self.ledger.record
        owners = self._owners_list
        auditor = self._auditor
        audit = auditor.observe if auditor is not None else None
        t = self._t
        result: object
        if detail:
            outcomes = []
            for page in pages:
                hit, victim, sid = serve(page, t)
                tenant = owners[page]
                record(tenant, hit)
                if audit is not None:
                    audit(page, tenant, hit)
                outcomes.append(
                    RequestOutcome(
                        page=page, tenant=tenant, hit=hit, t=t, shard=sid,
                        victim=victim,
                    )
                )
                t += 1
            result = outcomes
        elif audit is None:
            hit_flags = []
            append = hit_flags.append
            hits = 0
            for page in pages:
                hit, _victim, _sid = serve(page, t)
                record(owners[page], hit)
                append(hit)
                hits += hit
                t += 1
            result = BatchOutcome(
                t0=self._t,
                hits=hits,
                misses=len(hit_flags) - hits,
                hit_flags=hit_flags,
            )
        else:
            # Batch loop duplicated so the no-auditor fast path above
            # carries zero extra per-request work.
            hit_flags = []
            append = hit_flags.append
            hits = 0
            for page in pages:
                hit, _victim, _sid = serve(page, t)
                tenant = owners[page]
                record(tenant, hit)
                audit(page, tenant, hit)
                append(hit)
                hits += hit
                t += 1
            result = BatchOutcome(
                t0=self._t,
                hits=hits,
                misses=len(hit_flags) - hits,
                hit_flags=hit_flags,
            )
        self._t = t
        if obs_on:
            self._account(pages, t_enq, t_start)
        if credits is not None and self._gates is not None:
            for tenant, n in credits:
                self._gates[tenant].release(n)
        if not fut.cancelled():
            fut.set_result(result)

    def _process_pool(self, item: _Item) -> None:
        """Parallel-mode submission processing: route the batch across
        the worker pool with the global clock assigned up front, merge
        the flat flag replies back into submission order, and build the
        same outcome objects the in-process path returns.  Per-tenant
        hit/miss/window accounting happens worker-side; only the
        auditor (which needs the globally-ordered stream) observes
        here."""
        pages, fut, detail, credits, t_enq = item
        obs_on = self._obs_active
        if obs_on:
            t_start = perf_counter()
        pool = self._pool
        assert pool is not None
        owners = self._owners_list
        auditor = self._auditor
        t0 = self._t
        pages_arr = np.asarray(pages, dtype=np.int64)
        # Distributed span context: a deterministic per-submission trace
        # id (the global clock is unique and nonzero after +1) and a
        # router-side root span id that the workers parent under.
        trace_id = 0
        root_span = 0
        traced = False
        if self._tracing_on:
            traced = True
            if self._trace_sample > 1:
                self._trace_seq += 1
                traced = not (self._trace_seq % self._trace_sample)
            if traced:
                trace_id = t0 + 1
                root_span = next(self.obs.tracer._ids)
                t_route = perf_counter()
        result: object
        if detail:
            served = pool.apply_detail(pages_arr, t0)
            outcomes = []
            for i, page in enumerate(pages):
                hit, victim, sid = served[i]
                tenant = owners[page]
                if auditor is not None:
                    auditor.observe(page, tenant, hit)
                outcomes.append(
                    RequestOutcome(
                        page=page, tenant=tenant, hit=hit, t=t0 + i,
                        shard=sid, victim=victim,
                    )
                )
            result = outcomes
        else:
            flags = pool.apply(pages_arr, t0, trace_id, root_span)
            if auditor is not None:
                for i, page in enumerate(pages):
                    auditor.observe(page, owners[page], bool(flags[i]))
            hits = int(flags.sum())
            result = BatchOutcome(
                t0=t0,
                hits=hits,
                misses=int(flags.size) - hits,
                hit_flags=flags.astype(bool).tolist(),
            )
        if trace_id:
            # Root of the merged request tree: router-side route+merge.
            emit_span(
                self.obs.tracer,
                "serve.route",
                perf_counter() - t_route,
                trace_id=trace_id,
                span_id=root_span,
                parent_id=None,
                n=len(pages),
                t0=t0,
                workers=pool.num_workers,
            )
            if len(self._route_ctx) > 1024:  # best-effort bound
                self._route_ctx.clear()
            self._route_ctx[t0] = (trace_id, root_span)
        self._t = t0 + len(pages)
        if obs_on:
            self._account(pages, t_enq, t_start, traced)
        if credits is not None and self._gates is not None:
            for tenant, n in credits:
                self._gates[tenant].release(n)
        if not fut.cancelled():
            fut.set_result(result)

    def _account(
        self,
        pages: Sequence[int],
        t_enq: float,
        t_start: float,
        traced: Optional[bool] = None,
    ) -> None:
        """Post-apply telemetry for one submission (obs-active only).

        ``traced`` carries the pool path's per-submission sampling
        decision; ``None`` (the in-process path) decides it here with
        the same counter."""
        dur = perf_counter() - t_start
        queue_wait = (t_start - t_enq) if t_enq else 0.0
        n = len(pages)
        if self._metrics_on:
            self._h_apply.observe(dur)
            self._h_queue.observe(queue_wait)
        if self._tracing_on:
            if traced is None:
                traced = True
                if self._trace_sample > 1:
                    self._trace_seq += 1
                    traced = not (self._trace_seq % self._trace_sample)
            if traced:
                tracer = self.obs.tracer
                tracer.record_span("serve.queue_wait", queue_wait, n=n)
                tracer.record_span("serve.apply", dur, n=n, t=self._t)
        # In parallel mode the workers sample their own monitors against
        # their own policy instances (budget invariants are per-instance,
        # so worker-local sampling is sound); drift is checked at
        # gather time in _pool_snapshot.
        monitor = self.obs.monitor if self._pool is None else None
        if monitor is not None and self._monitor_every:
            self._since_monitor += n
            if self._since_monitor >= self._monitor_every:
                self._since_monitor = 0
                monitor.sample(
                    self._t,
                    self.ledger.misses_by_user(),
                    policies=[s.policy for s in self.shards.shards],
                )
                if len(monitor.flags) > self._monitor_flags_seen:
                    self._monitor_flags_seen = len(monitor.flags)
                    self._auto_dump("invariant-drift")

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    async def _timeline_loop(self) -> None:
        """Tick ``obs.timeline`` on the event loop: one registry
        snapshot per interval, zero per-request work."""
        import time as _time

        timeline = self.obs.timeline
        assert timeline is not None
        while True:
            await asyncio.sleep(timeline.interval)
            ts = _time.time()
            if timeline.snap(self.obs.registry, ts) and self.alerts is not None:
                # Alert rules read the snapshot that just landed — the
                # whole alerting pipeline rides this one timer.
                self.alerts.evaluate(ts)  # type: ignore[attr-defined]

    def profile_folded(self) -> Dict[str, Dict[str, int]]:
        """Per-process folded stacks: ``{"parent": ..., "w0": ...}``.

        Worker entries appear after :meth:`stop` (or an explicit
        :meth:`~repro.serve.workers.ShardWorkerPool.profile_gather`);
        merge with :func:`repro.obs.prof.merge_folded`.
        """
        out: Dict[str, Dict[str, int]] = {}
        if self.profiler is not None:
            out["parent"] = self.profiler.folded()
        if self._pool is not None and self._profile is not None:
            out.update(self._pool.profile_gather(best_effort=True))
        else:
            out.update(self._pool_profiles)
        return out

    def _pool_snapshot(
        self, best_effort: bool = False
    ) -> Optional[Dict[str, object]]:
        """Gather-and-merge the workers' ground truth (cached as the
        final state once the pool is gone).  Worker-side invariant
        drift is detected here — the parallel counterpart of the
        in-process post-sample check in :meth:`_account`."""
        pool = self._pool
        if pool is None:
            return self._pool_final
        try:
            snap = pool.snapshot(best_effort=best_effort)
        except ServerClosed:
            if not best_effort:
                raise
            return self._pool_final
        self._pool_final = snap
        if snap["monitor_flags"] > self._monitor_flags_seen:
            self._monitor_flags_seen = int(snap["monitor_flags"])
            self._auto_dump("invariant-drift")
        return snap

    def _serve_view(self):
        """Ground truth for every scrape path, as
        ``(ledger, shard_rows, monitor_counts)``.

        In-process mode reads the live ledger/shards directly; parallel
        mode gathers the workers' slices and rebuilds a merged ledger
        (via :meth:`CostLedger.from_counters`) plus merged shard rows,
        so both modes feed the same rendering code and emit the same
        document shapes.
        """
        # Best effort: a scrape must keep answering (with the
        # survivors' truth) even after a worker crash.
        snap = (
            self._pool_snapshot(best_effort=True) if self.workers > 1 else None
        )
        if snap is None:
            rows = [
                {
                    "shard": s.shard_id,
                    "occupancy": s.occupancy,
                    "slots": s.slots,
                    "evictions": s.evictions,
                    "timing": list(s.timing) if s.timing is not None else None,
                }
                for s in self.shards.shards
            ]
            monitor = self.obs.monitor
            counts = (
                (len(monitor.flags), len(monitor.samples))
                if monitor is not None
                else None
            )
            return self.ledger, rows, counts
        ledger = CostLedger.from_counters(
            self.shards.num_users,
            self._costs,
            self._window,
            hits=snap["hits"],
            misses=snap["misses"],
            total_requests=snap["served"],
            window_bins=snap["window_bins"],
        )
        counts = (
            (int(snap["monitor_flags"]), int(snap["monitor_samples"]))
            if self.obs.monitor is not None
            else None
        )
        return ledger, snap["shards"], counts

    def _collect_metrics(self) -> List[CollectedFamily]:
        """Scrape-time export of ground-truth serve state.

        Reads the ledger and shards directly (merged across the worker
        pool in parallel mode), so per-tenant hit/miss counters are
        *exact* — bit-identical to an offline ``simulate()`` of the
        same request sequence (test-enforced) — and available even when
        the hot-path registry is disabled.
        """
        ledger, shard_rows, monitor_counts = self._serve_view()
        hits = ledger.hits_by_user()
        misses = ledger.misses_by_user()
        tenant_hits = [
            ({"tenant": str(i)}, float(h)) for i, h in enumerate(hits)
        ]
        tenant_misses = [
            ({"tenant": str(i)}, float(m)) for i, m in enumerate(misses)
        ]
        out: List[CollectedFamily] = [
            (
                "serve_requests_total",
                "counter",
                "Requests served",
                [({}, float(self._t))],
            ),
            (
                "serve_hits_total",
                "counter",
                "Cache hits served",
                [({}, float(hits.sum()))],
            ),
            (
                "serve_misses_total",
                "counter",
                "Cache misses served",
                [({}, float(misses.sum()))],
            ),
            (
                "serve_tenant_hits_total",
                "counter",
                "Cache hits per tenant",
                tenant_hits,
            ),
            (
                "serve_tenant_misses_total",
                "counter",
                "Cache misses per tenant (the paper's fetch count a_i)",
                tenant_misses,
            ),
            (
                "serve_queue_depth",
                "gauge",
                "Submissions currently queued",
                [({}, float(self.queue_depth))],
            ),
            (
                "serve_worker_crashes_total",
                "counter",
                "Worker processes lost (WorkerCrashed)",
                [({}, float(self._crashes))],
            ),
        ]
        if ledger.costs is not None:
            out.append(
                (
                    "serve_tenant_cost",
                    "gauge",
                    "Running objective term f_i(m_i) per tenant",
                    [
                        ({"tenant": str(i)}, ledger.cost_of(i))
                        for i in range(ledger.num_users)
                    ],
                )
            )
            out.append(
                (
                    "serve_tenant_marginal_quote",
                    "gauge",
                    "Fresh-budget marginal f_i'(m_i + 1) per tenant",
                    [
                        ({"tenant": str(i)}, ledger.marginal_quote(i))
                        for i in range(ledger.num_users)
                    ],
                )
            )
        occ_rows = [
            ({"shard": str(r["shard"])}, float(r["occupancy"]))
            for r in shard_rows
        ]
        slot_rows = [
            ({"shard": str(r["shard"])}, float(r["slots"])) for r in shard_rows
        ]
        evict_rows = [
            ({"shard": str(r["shard"])}, float(r["evictions"]))
            for r in shard_rows
        ]
        out.extend(
            [
                ("serve_shard_occupancy", "gauge", "Resident pages per shard", occ_rows),
                ("serve_shard_slots", "gauge", "Slot allocation per shard", slot_rows),
                (
                    "serve_shard_evictions_total",
                    "counter",
                    "Evictions per shard",
                    evict_rows,
                ),
            ]
        )
        timed = [r for r in shard_rows if r["timing"] is not None]
        if timed:
            out.append(
                (
                    "serve_policy_decision_seconds_total",
                    "counter",
                    "Cumulative choose_victim time per shard",
                    [
                        ({"shard": str(r["shard"])}, float(r["timing"][0]))
                        for r in timed
                    ],
                )
            )
            out.append(
                (
                    "serve_policy_decisions_total",
                    "counter",
                    "choose_victim calls per shard",
                    [
                        ({"shard": str(r["shard"])}, float(r["timing"][1]))
                        for r in timed
                    ],
                )
            )
        if monitor_counts is not None:
            flags, samples = monitor_counts
            out.append(
                (
                    "serve_invariant_drift_flags_total",
                    "counter",
                    "Invariant drift flags raised by the live monitor",
                    [({}, float(flags))],
                )
            )
            out.append(
                (
                    "serve_invariant_samples_total",
                    "counter",
                    "Invariant monitor sampling instants",
                    [({}, float(samples))],
                )
            )
        return out

    def prometheus_metrics(self) -> str:
        """Prometheus text exposition (the TCP ``metrics`` op)."""
        return self.obs.registry.render()

    # ------------------------------------------------------------------
    # Competitive-ratio audit
    # ------------------------------------------------------------------
    def audit(self) -> Dict[str, object]:
        """The live Theorem-1.1 audit snapshot (TCP ``audit`` op).

        Requires an :class:`~repro.obs.audit.CompetitiveAuditor` on the
        bundle (``obs.auditor``); raises :class:`RuntimeError` otherwise.
        """
        if self._auditor is None:
            raise RuntimeError(
                "no auditor attached: build the server with "
                "obs=Observability(..., auditor=CompetitiveAuditor(...))"
            )
        return self._auditor.snapshot()

    def _collect_audit(self) -> List[CollectedFamily]:
        """Scrape-time export of the auditor gauges."""
        auditor = self._auditor
        assert auditor is not None  # registered only when attached
        snap = auditor.snapshot()
        tenant_online = [
            ({"tenant": str(i)}, float(m))
            for i, m in enumerate(snap["online_misses"])
        ]
        tenant_offline = [
            ({"tenant": str(i)}, float(b))
            for i, b in enumerate(snap["offline_misses"])
        ]
        return [
            (
                "audit_ratio",
                "gauge",
                "Audited competitive ratio: online cost / windowed-Belady cost",
                [({}, float(snap["audit_ratio"]))],
            ),
            (
                "audit_theorem11_bound",
                "gauge",
                "Live Theorem 1.1 right-hand side sum f_i(alpha*k*b_i)",
                [({}, float(snap["audit_theorem11_bound"]))],
            ),
            (
                "audit_online_cost",
                "gauge",
                "Online cost sum f_i(a_i) over the audited prefix",
                [({}, float(snap["audit_online_cost"]))],
            ),
            (
                "audit_offline_cost",
                "gauge",
                "Baseline cost sum f_i(b_i) over the audited prefix",
                [({}, float(snap["audit_offline_cost"]))],
            ),
            (
                "audit_processed_total",
                "counter",
                "Requests priced by the offline baseline",
                [({}, float(snap["processed"]))],
            ),
            (
                "audit_pending",
                "gauge",
                "Requests buffered awaiting baseline lookahead",
                [({}, float(snap["pending"]))],
            ),
            (
                "audit_tenant_online_misses",
                "gauge",
                "Audited online misses a_i per tenant",
                tenant_online,
            ),
            (
                "audit_tenant_offline_misses",
                "gauge",
                "Baseline fetches b_i per tenant",
                tenant_offline,
            ),
        ]

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``/stats`` snapshot (JSON-able); in parallel mode the
        tenant/shard rows are merged from the workers' ground truth, so
        the document is schema-identical at any worker count."""
        ledger, shard_rows, _counts = self._serve_view()
        snap = ledger.snapshot()
        snap.update(
            {
                "server": self.name,
                "policy": self.shards.policy_name,
                "k": self.shards.k,
                "num_shards": self.shards.num_shards,
                "workers": self.workers,
                "time": self._t,
                "queue_depth": self.queue_depth,
                "shards": [
                    {
                        "shard": r["shard"],
                        "occupancy": r["occupancy"],
                        "slots": r["slots"],
                    }
                    for r in shard_rows
                ],
            }
        )
        if self._gates is not None:
            snap["tenant_queued"] = [g.queued for g in self._gates]
        # Windowed rates: totals are snapshotted at stats() time, so the
        # hot path pays nothing; rates warm up on the second call and
        # then cover up to the RateWindow horizon (~10 s).
        totals: Dict[str, float] = {
            "requests": float(self._t),
            "hits": float(ledger.hits),
            "misses": float(ledger.misses),
        }
        if ledger.costs is not None:
            totals["cost"] = ledger.total_cost()
        self._rates.push(monotonic(), **totals)
        rates = self._rates.rates()
        if not rates:
            # Zero-length window (first scrape, or two scrapes in the
            # same clock tick): report explicit zeros rather than an
            # empty/raising document, so scrapers need no special case.
            rates = {"window_seconds": 0.0}
            for key in totals:
                rates[f"{key}_per_sec"] = 0.0
        snap["rates"] = rates
        return snap

    # ------------------------------------------------------------------
    # TCP front end (line-delimited JSON)
    # ------------------------------------------------------------------
    async def start_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Expose the server over TCP; returns the bound ``(host, port)``
        (pass ``port=0`` for an ephemeral port)."""
        if self._queue is None or self._closed:
            raise RuntimeError("start() the server before start_tcp()")
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock_host, sock_port = self._tcp_server.sockets[0].getsockname()[:2]
        return sock_host, sock_port

    async def start_http(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Expose the HTTP admin plane (``/metrics``, ``/health``,
        ``/ready``, ``/alerts``, ``/timeline``, ``/stats``) on the
        event loop; returns the bound ``(host, port)``.

        ``/metrics`` serves the same worker-merged scrape as the TCP
        ``metrics`` op; ``/ready`` is drain-aware (503 the moment
        :meth:`stop` begins, while accepted requests still drain).
        """
        if self._httpd is not None:
            raise RuntimeError("HTTP admin plane already started")
        from repro.obs.httpd import ObsHttpServer

        self._httpd = ObsHttpServer(
            metrics=self.prometheus_metrics,
            alerts=self.alerts,
            timeline=self.obs.timeline,
            stats=self.stats,
            ready=lambda: not self._closed,
            name=self.name,
        )
        self.http_address = await self._httpd.start(host, port)
        return self.http_address

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch_line(line)
                # Synchronous read (no await since dispatch returned):
                # the route context this dispatch recorded, if any.
                reply_ctx = self._reply_ctx
                self._reply_ctx = None
                payload = json.dumps(response).encode("utf-8") + b"\n"
                if self._tracing_on:
                    t0 = perf_counter()
                    writer.write(payload)
                    await writer.drain()
                    dur = perf_counter() - t0
                    if reply_ctx is not None:
                        # Close the distributed tree: router -> worker
                        # apply -> reply, all under one trace id.
                        emit_span(
                            self.obs.tracer,
                            "serve.reply",
                            dur,
                            trace_id=reply_ctx[0],
                            span_id=next(self.obs.tracer._ids),
                            parent_id=reply_ctx[1],
                            bytes=len(payload),
                        )
                    else:
                        self.obs.tracer.record_span(
                            "serve.reply", dur, bytes=len(payload)
                        )
                else:
                    writer.write(payload)
                    await writer.drain()
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (  # pragma: no cover - teardown races are benign
                asyncio.CancelledError,
                ConnectionResetError,
                OSError,
            ):
                pass

    async def _dispatch_line(self, line: bytes) -> Dict[str, object]:
        try:
            msg = json.loads(line)
            op = msg.get("op")
            if op == "request":
                out = await self.request(int(msg["page"]))
                self._reply_ctx = self._route_ctx.pop(out.t, None)
                return {
                    "ok": True,
                    "hit": out.hit,
                    "tenant": out.tenant,
                    "t": out.t,
                    "shard": out.shard,
                }
            if op == "batch":
                pages = [int(p) for p in msg["pages"]]
                out = await self.request_many(pages)
                self._reply_ctx = self._route_ctx.pop(out.t0, None)
                resp: Dict[str, object] = {
                    "ok": True,
                    "hits": out.hits,
                    "misses": out.misses,
                    "t0": out.t0,
                }
                if msg.get("detail"):
                    resp["hit_flags"] = out.hit_flags
                return resp
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "metrics":
                return {"ok": True, "metrics": self.prometheus_metrics()}
            if op == "audit":
                if self._auditor is None:
                    return {"ok": False, "error": "no auditor attached"}
                return {"ok": True, "audit": self.audit()}
            if op == "quote":
                tenant = int(msg["tenant"])
                ledger = self._serve_view()[0]
                return {
                    "ok": True,
                    "tenant": tenant,
                    "marginal_quote": ledger.marginal_quote(tenant),
                    "cost": ledger.cost_of(tenant),
                }
            if op == "alerts":
                if self.alerts is None:
                    return {"ok": False, "error": "no alert engine attached"}
                return {"ok": True, "alerts": self.alerts.snapshot()}  # type: ignore[attr-defined]
            if op == "ping":
                return {"ok": True, "time": self._t}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except ServerClosed as exc:
            return {"ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheServer(name={self.name!r}, policy={self.shards.policy_name!r}, "
            f"k={self.shards.k}, S={self.shards.num_shards}, served={self._t})"
        )


__all__ = [
    "BatchOutcome",
    "CacheServer",
    "RequestOutcome",
    "ServerClosed",
    "TenantGate",
]
